/**
 * @file
 * Microbenchmarks (google-benchmark) of the prefetcher data structures
 * and the simulation kernel: these bound the hardware-model cost per
 * observed reference and document the relative complexity argument the
 * paper makes (sequential << I-detection << D-detection).
 */

#include <benchmark/benchmark.h>

#include "core/characterizer.hh"
#include "core/ddet.hh"
#include "core/idet.hh"
#include "core/sequential.hh"
#include "mem/cache_array.hh"
#include "net/mesh.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

using namespace psim;

namespace
{

/** A mixed reference stream: stride sequences with random interludes. */
std::vector<ReadObservation>
makeStream(std::size_t n)
{
    std::vector<ReadObservation> stream;
    stream.reserve(n);
    Rng rng(7);
    Addr base = 1 << 20;
    for (std::size_t i = 0; i < n; ++i) {
        ReadObservation obs;
        obs.pc = 0x1000 + (i % 7) * 4;
        if (i % 11 == 0) {
            obs.addr = base + rng.below(1 << 22);
        } else {
            obs.addr = base + static_cast<Addr>(i) * 32;
        }
        obs.hit = i % 3 == 0;
        obs.taggedHit = obs.hit && (i % 6 == 0);
        stream.push_back(obs);
    }
    return stream;
}

void
BM_SequentialObserve(benchmark::State &state)
{
    auto stream = makeStream(4096);
    SequentialPrefetcher p(32, 1);
    std::vector<Addr> out;
    std::size_t i = 0;
    for (auto _ : state) {
        out.clear();
        p.observeRead(stream[i++ % stream.size()], out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_SequentialObserve);

void
BM_IDetObserve(benchmark::State &state)
{
    auto stream = makeStream(4096);
    IDetPrefetcher p(256, 1, 32);
    std::vector<Addr> out;
    std::size_t i = 0;
    for (auto _ : state) {
        out.clear();
        p.observeRead(stream[i++ % stream.size()], out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_IDetObserve);

void
BM_DDetObserve(benchmark::State &state)
{
    auto stream = makeStream(4096);
    DDetPrefetcher p(32, 1, 16, 3, 4096);
    std::vector<Addr> out;
    std::size_t i = 0;
    for (auto _ : state) {
        out.clear();
        p.observeRead(stream[i++ % stream.size()], out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_DDetObserve);

void
BM_CharacterizerObserve(benchmark::State &state)
{
    auto stream = makeStream(4096);
    StrideCharacterizer c(32);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &obs = stream[i++ % stream.size()];
        c.observeMiss(obs.pc, obs.addr);
    }
}
BENCHMARK(BM_CharacterizerObserve);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eq.scheduleIn(static_cast<Tick>(i % 8), [&sink] { ++sink; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_CacheArrayFindFill(benchmark::State &state)
{
    CacheArray array(16384, 1, 32);
    Rng rng(3);
    for (auto _ : state) {
        Addr a = rng.below(1 << 20) & ~31ULL;
        CacheBlk *blk = array.find(a);
        if (!blk) {
            CacheBlk *frame = array.findVictim(a);
            array.fill(frame, a, CohState::Shared, 0);
        }
        benchmark::DoNotOptimize(blk);
    }
}
BENCHMARK(BM_CacheArrayFindFill);

void
BM_MeshSend(benchmark::State &state)
{
    EventQueue eq;
    MachineConfig cfg;
    Mesh mesh(eq, cfg);
    Rng rng(5);
    for (auto _ : state) {
        NodeId src = static_cast<NodeId>(rng.below(16));
        NodeId dst = static_cast<NodeId>(rng.below(16));
        if (dst == src)
            dst = (dst + 1) % 16;
        mesh.send(src, dst, 10, [] {});
        eq.run();
    }
}
BENCHMARK(BM_MeshSend);

} // namespace

BENCHMARK_MAIN();
