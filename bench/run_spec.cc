/**
 * @file
 * Generic spec runner: `run_spec --spec NAME|PATH [flags]` executes
 * any psim-spec-v1 experiment spec, prints its report, and writes the
 * canonical psim-results-v1 document. The per-table binaries
 * (fig6_schemes, table2_characteristics, ...) are thin shims over the
 * same entry point with their spec name baked in.
 */

#include "spec_main.hh"

int
main(int argc, char **argv)
{
    return psim::bench::runSpecMain(nullptr, argc, argv);
}
