/**
 * @file
 * Microbenchmarks (google-benchmark) of the event engine: schedule,
 * cancel and drain throughput for the workloads the machine generates
 * (short-delay schedules dominating, occasional long delays, cancels).
 *
 * `LegacyEventQueue` is a faithful copy of the seed engine
 * (std::function callbacks in a priority_queue, lazy-cancel list with
 * an O(n) scan per pop) so a single run quantifies the speedup of the
 * pooled/time-wheel engine; the `BM_Legacy*` numbers are the baseline
 * the acceptance criterion compares against. The 50%-cancel workload
 * is the stressing one: the legacy engine's cancel list makes it
 * quadratic in the batch size.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <queue>

#include "sim/event_queue.hh"

using namespace psim;

namespace
{

/** The seed event engine, verbatim, for baseline measurements. */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;
    using EventId = std::uint64_t;

    Tick now() const { return _now; }

    EventId
    schedule(Tick when, Callback cb)
    {
        EventId id = _nextId++;
        _heap.push(Entry{when, id, std::move(cb)});
        ++_live;
        return id;
    }

    EventId
    scheduleIn(Tick delta, Callback cb)
    {
        return schedule(_now + delta, std::move(cb));
    }

    void cancel(EventId id) { _cancelled.push_back(id); }

    bool empty() const { return _live == 0; }

    bool
    runOne()
    {
        while (!_heap.empty()) {
            Entry e = _heap.top();
            _heap.pop();
            --_live;
            if (isCancelled(e.id))
                continue;
            _now = e.when;
            e.cb();
            return true;
        }
        return false;
    }

    void
    run()
    {
        while (!_heap.empty())
            runOne();
    }

  private:
    struct Entry
    {
        Tick when;
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    bool
    isCancelled(EventId id)
    {
        auto it = std::find(_cancelled.begin(), _cancelled.end(), id);
        if (it == _cancelled.end())
            return false;
        _cancelled.erase(it);
        return true;
    }

    Tick _now = 0;
    EventId _nextId = 1;
    std::size_t _live = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    std::vector<EventId> _cancelled;
};

constexpr std::size_t kBatch = 8192;

/** Schedule a batch of short-delay events and drain it. */
template <typename Queue>
void
pureSchedule(benchmark::State &state)
{
    Queue eq;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < kBatch; ++i)
            eq.scheduleIn(1 + (i % 97), [&fired] { ++fired; });
        eq.run();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kBatch));
}

/** Schedule a batch, cancel every other event, drain the rest. */
template <typename Queue>
void
halfCancel(benchmark::State &state)
{
    Queue eq;
    std::uint64_t fired = 0;
    std::vector<typename Queue::EventId> ids;
    ids.reserve(kBatch);
    for (auto _ : state) {
        ids.clear();
        for (std::size_t i = 0; i < kBatch; ++i)
            ids.push_back(eq.scheduleIn(1 + (i % 97),
                                        [&fired] { ++fired; }));
        for (std::size_t i = 0; i < kBatch; i += 2)
            eq.cancel(ids[i]);
        eq.run();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kBatch));
}

/** Steady-state ping: every fired event schedules its successor. */
template <typename Queue>
void
wheelHit(benchmark::State &state)
{
    Queue eq;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        // All delays below the wheel horizon (256): the common case on
        // the machine's cache/bus/mesh paths.
        for (std::size_t i = 0; i < kBatch; ++i)
            eq.scheduleIn(1 + (i % 250), [&fired] { ++fired; });
        eq.run();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kBatch));
}

/** Long delays only: exercises the overflow heap path. */
template <typename Queue>
void
farSchedule(benchmark::State &state)
{
    Queue eq;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < kBatch; ++i)
            eq.scheduleIn(300 + 13 * (i % 251), [&fired] { ++fired; });
        eq.run();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kBatch));
}

void BM_PureSchedule(benchmark::State &s) { pureSchedule<EventQueue>(s); }
void BM_LegacyPureSchedule(benchmark::State &s)
{
    pureSchedule<LegacyEventQueue>(s);
}

void BM_HalfCancel(benchmark::State &s) { halfCancel<EventQueue>(s); }
void BM_LegacyHalfCancel(benchmark::State &s)
{
    halfCancel<LegacyEventQueue>(s);
}

void BM_WheelHit(benchmark::State &s) { wheelHit<EventQueue>(s); }
void BM_FarSchedule(benchmark::State &s) { farSchedule<EventQueue>(s); }
void BM_LegacyFarSchedule(benchmark::State &s)
{
    farSchedule<LegacyEventQueue>(s);
}

BENCHMARK(BM_PureSchedule);
BENCHMARK(BM_LegacyPureSchedule);
BENCHMARK(BM_HalfCancel);
BENCHMARK(BM_LegacyHalfCancel);
BENCHMARK(BM_WheelHit);
BENCHMARK(BM_FarSchedule);
BENCHMARK(BM_LegacyFarSchedule);

} // namespace

BENCHMARK_MAIN();
