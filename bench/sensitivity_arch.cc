/**
 * @file
 * Sensitivity of the paper's conclusion to architectural parameters.
 *
 * The paper fixes one design point (Table 1). This harness perturbs
 * the parameters that most plausibly interact with prefetching --
 * SLWB (pending-transaction) entries, FLC size, network fall-through
 * latency, and DRAM latency -- and re-measures the headline comparison
 * (sequential vs I-detection) on one sequential-friendly application
 * (LU) and the one stride-friendly application (Ocean). The conclusion
 * is robust if the per-application winner never flips.
 */

#include "common.hh"

using namespace psim;
using namespace psim::bench;

namespace
{

void
comparePoint(const char *label, const MachineConfig &base_cfg)
{
    for (const char *app : {"lu", "ocean"}) {
        MachineConfig none_cfg = base_cfg;
        none_cfg.prefetch.scheme = PrefetchScheme::None;
        apps::Run base = runChecked(app, none_cfg);

        MachineConfig seq_cfg = base_cfg;
        seq_cfg.prefetch.scheme = PrefetchScheme::Sequential;
        apps::Run seq = runChecked(app, seq_cfg);

        MachineConfig idet_cfg = base_cfg;
        idet_cfg.prefetch.scheme = PrefetchScheme::IDet;
        apps::Run idet = runChecked(app, idet_cfg);

        const char *winner =
                seq.metrics.readMisses < idet.metrics.readMisses
                        ? "seq" : "i-det";
        std::printf("%-26s %-6s %12.2f %12.2f   winner: %s\n", label,
                    app,
                    seq.metrics.readMisses / base.metrics.readMisses,
                    idet.metrics.readMisses / base.metrics.readMisses,
                    winner);
    }
}

} // namespace

int
main()
{
    std::printf("Sensitivity: does the seq-vs-stride winner survive "
                "parameter changes?\n");
    std::printf("(expected: seq wins LU, i-det wins Ocean, at every "
                "point)\n\n");
    hr(86);
    std::printf("%-26s %-6s %12s %12s\n", "configuration", "app",
                "seq misses", "idet misses");
    hr(86);

    comparePoint("paper default", paperConfig());

    for (unsigned slwb : {4u, 32u}) {
        MachineConfig cfg = paperConfig();
        cfg.slwbEntries = slwb;
        std::string label = "slwb=" + std::to_string(slwb);
        comparePoint(label.c_str(), cfg);
    }

    for (unsigned flc : {2048u, 16384u}) {
        MachineConfig cfg = paperConfig();
        cfg.flcSize = flc;
        std::string label = "flc=" + std::to_string(flc / 1024) + "KB";
        comparePoint(label.c_str(), cfg);
    }

    for (Tick ft : {1u, 6u}) {
        MachineConfig cfg = paperConfig();
        cfg.fallThrough = ft;
        std::string label = "fallThrough=" + std::to_string(ft);
        comparePoint(label.c_str(), cfg);
    }

    for (Tick mem : {5u, 18u}) {
        MachineConfig cfg = paperConfig();
        cfg.memAccessLat = mem;
        std::string label = "memLat=" + std::to_string(mem * 10) + "ns";
        comparePoint(label.c_str(), cfg);
    }

    hr(86);
    return 0;
}
