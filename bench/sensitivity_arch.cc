/**
 * @file
 * Thin shim: this legacy binary now runs specs/sensitivity_arch.json through the
 * shared spec driver (bench/spec_main.hh). The printed table and its
 * flags are unchanged; the machine-readable output is the canonical
 * psim-results-v1 document (default BENCH_sensitivity_arch.json).
 */

#include "spec_main.hh"

int
main(int argc, char **argv)
{
    return psim::bench::runSpecMain("sensitivity_arch", argc, argv);
}
