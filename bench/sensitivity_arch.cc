/**
 * @file
 * Sensitivity of the paper's conclusion to architectural parameters.
 *
 * The paper fixes one design point (Table 1). This harness perturbs
 * the parameters that most plausibly interact with prefetching --
 * SLWB (pending-transaction) entries, FLC size, network fall-through
 * latency, and DRAM latency -- and re-measures the headline comparison
 * (sequential vs I-detection) on one sequential-friendly application
 * (LU) and the one stride-friendly application (Ocean). The conclusion
 * is robust if the per-application winner never flips.
 *
 * Every (configuration, app) point is an independent cell and runs on
 * `--jobs` threads; lines are printed in sweep order afterwards.
 */

#include "common.hh"

using namespace psim;
using namespace psim::bench;

namespace
{

struct Point
{
    std::string label;
    MachineConfig cfg;
    std::string app;
};

std::string
comparePoint(const BenchOptions &opt, const Point &p)
{
    // Cell names fold the sweep label in ("slwb=4-lu-seq", ...).
    std::string stem = p.label + "-" + p.app + "-";

    MachineConfig none_cfg = p.cfg;
    none_cfg.prefetch.scheme = PrefetchScheme::None;
    apps::Run base = runChecked(p.app, none_cfg,
            opt.runOptions(stem + "base"));

    MachineConfig seq_cfg = p.cfg;
    seq_cfg.prefetch.scheme = PrefetchScheme::Sequential;
    apps::Run seq = runChecked(p.app, seq_cfg,
            opt.runOptions(stem + "seq"));

    MachineConfig idet_cfg = p.cfg;
    idet_cfg.prefetch.scheme = PrefetchScheme::IDet;
    apps::Run idet = runChecked(p.app, idet_cfg,
            opt.runOptions(stem + "idet"));

    const char *winner =
            seq.metrics.readMisses < idet.metrics.readMisses
                    ? "seq" : "i-det";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%-26s %-6s %12.2f %12.2f   winner: %s\n",
                  p.label.c_str(), p.app.c_str(),
                  seq.metrics.readMisses / base.metrics.readMisses,
                  idet.metrics.readMisses / base.metrics.readMisses,
                  winner);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    const WallTimer wall;

    std::vector<Point> points;
    auto addPoint = [&](const std::string &label,
                        const MachineConfig &cfg) {
        for (const char *app : {"lu", "ocean"})
            points.push_back(Point{label, cfg, app});
    };

    addPoint("paper default", paperConfig());

    for (unsigned slwb : {4u, 32u}) {
        MachineConfig cfg = paperConfig();
        cfg.slwbEntries = slwb;
        addPoint("slwb=" + std::to_string(slwb), cfg);
    }

    for (unsigned flc : {2048u, 16384u}) {
        MachineConfig cfg = paperConfig();
        cfg.flcSize = flc;
        addPoint("flc=" + std::to_string(flc / 1024) + "KB", cfg);
    }

    for (Tick ft : {1u, 6u}) {
        MachineConfig cfg = paperConfig();
        cfg.fallThrough = ft;
        addPoint("fallThrough=" + std::to_string(ft), cfg);
    }

    for (Tick mem : {5u, 18u}) {
        MachineConfig cfg = paperConfig();
        cfg.memAccessLat = mem;
        addPoint("memLat=" + std::to_string(mem * 10) + "ns", cfg);
    }

    std::vector<std::string> lines(points.size());
    runGrid(points.size(), resolveJobs(opt.jobs), [&](std::size_t i) {
        lines[i] = comparePoint(opt, points[i]);
        progress(points[i].app.c_str(), points[i].label.c_str());
    });

    std::printf("Sensitivity: does the seq-vs-stride winner survive "
                "parameter changes?\n");
    std::printf("(expected: seq wins LU, i-det wins Ocean, at every "
                "point)\n\n");
    hr(86);
    std::printf("%-26s %-6s %12s %12s\n", "configuration", "app",
                "seq misses", "idet misses");
    hr(86);
    for (const auto &line : lines)
        std::fputs(line.c_str(), stdout);
    hr(86);
    wall.report();
    return 0;
}
