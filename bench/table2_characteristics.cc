/**
 * @file
 * Reproduces Table 2: application characteristics with an infinitely
 * large second-level cache.
 *
 * Methodology (paper Section 5.1): run the baseline architecture (no
 * prefetching), collect one processor's demand read misses, classify
 * them with I-detection (>= 3 equidistant accesses from the same load
 * instruction form a stride sequence), and report
 *   - the fraction of read misses inside stride sequences,
 *   - the average length of a stride sequence, and
 *   - the dominant strides measured in blocks.
 */

#include "common.hh"

using namespace psim;
using namespace psim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    const WallTimer wall;
    const std::vector<std::string> &workloads = opt.workloads();

    // One independent cell per application; rows are formatted by the
    // cells and printed in grid order below.
    std::vector<std::string> rows(workloads.size());
    runGrid(rows.size(), resolveJobs(opt.jobs), [&](std::size_t i) {
        const std::string &name = workloads[i];
        MachineConfig cfg = paperConfig();
        apps::RunOptions opts;
        opts.characterize = true;
        apps::Run run = runChecked(name, cfg, opt.runOptions(name, opts));

        // The paper considers the requests of one processor, "which
        // has been shown to be representative"; node 0 here.
        auto report = run.machine->characterizer(0)->finalize();
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "%-10s %13.1f%% %14.1f %12llu   %s\n", name.c_str(),
                      100.0 * report.strideFraction,
                      report.avgSequenceLength,
                      static_cast<unsigned long long>(report.totalMisses),
                      dominantStrides(report, 3).c_str());
        rows[i] = buf;
        progress(name.c_str(), "table2");
    });

    std::printf("Table 2: application characteristics, infinite SLC "
                "(baseline, 16 procs, 32 B blocks)\n");
    std::printf("paper reference:  MP3D 9.2%% / 5.2 / 1(76%%)  "
                "Chol 80%% / 7.2 / 1(95%%)  Water 79%% / 8.0 / 21(99%%)\n");
    std::printf("                  LU 93%% / 16.9 / 1(93%%)  "
                "Ocean 66%% / 7.6 / 65(42%%),1(31%%)  "
                "PTHOR 4.1%% / 3.4 / -\n\n");
    hr();
    std::printf("%-10s %14s %14s %12s   %s\n", "app",
                "stride misses", "avg seq len", "read misses",
                "dominant strides (blocks)");
    hr();

    for (const auto &row : rows)
        std::fputs(row.c_str(), stdout);
    hr();
    std::printf("\nstride misses = %% of demand read misses inside "
                "stride sequences (>=3 equidistant\naccesses from one "
                "load instruction); strides shorter than a block count "
                "as 1 block.\n");
    wall.report();
    return 0;
}
