/**
 * @file
 * Shared helpers for the paper-reproduction benchmark harnesses.
 *
 * Every harness builds the paper's 16-node machine (Table 1 defaults),
 * runs the six applications, and prints its table/figure in the
 * paper's layout. Absolute values depend on the scaled-down inputs
 * (see DESIGN.md); the comparisons between schemes are the result.
 */

#ifndef PSIM_BENCH_COMMON_HH
#define PSIM_BENCH_COMMON_HH

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "apps/driver.hh"
#include "sim/parallel.hh"
#include "sim/parse.hh"

namespace psim::bench
{

/**
 * Options shared by every grid harness. Independent (app, scheme)
 * cells run on `jobs` threads (see sim/parallel.hh); results are
 * collected per cell and printed in grid order afterwards, so the
 * table text is byte-identical for any job count.
 */
struct BenchOptions
{
    unsigned jobs = 0;        ///< 0: PSIM_JOBS env, else hardware
    std::string jsonPath;     ///< empty: no machine-readable output
    std::string spec;         ///< --spec: name or path of the spec
    std::vector<std::string> apps; ///< empty: the paper's six
    /** Intra-run shards per machine (0: classic serial engine). */
    unsigned shards = 0;
    /** Override the machine size (0: the paper's 16 processors). */
    unsigned procs = 0;
    /** Per-cell observability flags (--stats-json & friends). */
    apps::ObservabilityOptions obs;

    /**
     * Apply the machine-shape flags (--procs, --shards) to one cell's
     * config. The mesh is kept as square as the processor count allows
     * (applyProcCount(); awkward counts warn, see EXPERIMENTS.md).
     */
    void
    applyMachine(MachineConfig &cfg) const
    {
        if (procs)
            applyProcCount(cfg, procs);
        cfg.shards = shards;
    }

    /** The workload list this harness should run. */
    const std::vector<std::string> &
    workloads() const
    {
        return apps.empty() ? apps::paperWorkloads() : apps;
    }

    /**
     * RunOptions for one grid cell: @p base with the observability
     * flags applied, output files named "<prefix><cell>.json"/".csv".
     */
    apps::RunOptions
    runOptions(const std::string &cell, apps::RunOptions base = {}) const
    {
        obs.apply(base, cell);
        return base;
    }
};

/**
 * Parse `--jobs N` (or `-jN`), `--json <path>`, `--apps a,b,c` and the
 * shared observability flags (--stats-json PREFIX, --sample-interval N,
 * --sample-csv PREFIX, --chrome-trace PREFIX, --chrome-window A:B).
 * Unknown arguments are fatal so typos do not silently serialize.
 */
inline BenchOptions
parseBenchArgs(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) {
            if (i + 1 >= argc)
                psim_fatal("%s needs a value", flag);
            return std::string(argv[++i]);
        };
        if (opt.obs.parseArg(argc, argv, &i)) {
            // consumed an observability flag
        } else if (arg == "--jobs" || arg == "-j") {
            opt.jobs = parseUnsignedFlag("--jobs", value("--jobs"));
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
            opt.jobs = parseUnsignedFlag("-jN", arg.substr(2));
        } else if (arg == "--json" || arg == "--out") {
            opt.jsonPath = value("--json");
        } else if (arg == "--spec") {
            opt.spec = value("--spec");
        } else if (arg == "--shards") {
            opt.shards = parseUnsignedFlag("--shards", value("--shards"));
        } else if (arg == "--procs") {
            opt.procs = parseUnsignedFlag("--procs", value("--procs"));
        } else if (arg == "--apps") {
            std::string list = value("--apps");
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                std::size_t comma = list.find(',', pos);
                std::string name = list.substr(pos,
                        comma == std::string::npos ? comma : comma - pos);
                if (!name.empty())
                    opt.apps.push_back(name);
                pos = comma == std::string::npos ? comma : comma + 1;
            }
            if (opt.apps.empty())
                psim_fatal("--apps needs a comma-separated list");
        } else {
            psim_fatal("unknown argument '%s' "
                       "(supported: --spec NAME|PATH, --jobs N, "
                       "--json/--out PATH, --apps a,b, "
                       "--shards N, --procs N, "
                       "--stats-json PREFIX, --sample-interval N, "
                       "--sample-csv PREFIX, --chrome-trace PREFIX, "
                       "--chrome-window A:B)",
                       arg.c_str());
        }
    }
    return opt;
}

/**
 * Wall-clock stopwatch for whole-harness timing. Every bench prints
 * its elapsed wall time on stderr so speedups from --jobs/--shards are
 * visible without wrapping the binary in `time`.
 */
class WallTimer
{
  public:
    WallTimer() : _start(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                std::chrono::steady_clock::now() - _start).count();
    }

    /** Print "  wall time: X.XXs" on stderr. */
    void
    report() const
    {
        std::fprintf(stderr, "  wall time: %.2fs\n", seconds());
    }

  private:
    std::chrono::steady_clock::time_point _start;
};

/** Serialized "  ran <app> <scheme>" progress line (stderr). */
inline void
progress(const char *app, const char *what)
{
    static std::mutex mx;
    std::lock_guard<std::mutex> lk(mx);
    std::fprintf(stderr, "  ran %-9s %-9s\n", app, what);
}

/**
 * Minimal JSON emitter for machine-readable bench results — just
 * enough structure for the result-trajectory tooling; no dependency.
 */
class JsonWriter
{
  public:
    void
    beginObject(const std::string &key = "")
    {
        comma();
        if (!key.empty())
            _out += '"' + key + "\":";
        _out += '{';
        _first = true;
    }

    void
    endObject()
    {
        _out += '}';
        _first = false;
    }

    void
    field(const std::string &key, double v)
    {
        comma();
        if (std::isnan(v)) {
            // JSON has no NaN; an absent value (prefetch efficiency of
            // a run that issued no prefetches) becomes null.
            _out += '"' + key + "\":null";
            return;
        }
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        _out += '"' + key + "\":" + buf;
    }

    void
    field(const std::string &key, const std::string &v)
    {
        comma();
        _out += '"' + key + "\":\"" + v + '"';
    }

    /** Write the document to @p path (fatal on I/O error). */
    void
    write(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            psim_fatal("cannot write %s", path.c_str());
        std::fputs(_out.c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
    }

  private:
    void
    comma()
    {
        if (!_first)
            _out += ',';
        _first = false;
    }

    std::string _out;
    bool _first = true;
};

inline MachineConfig
paperConfig(PrefetchScheme scheme = PrefetchScheme::None)
{
    MachineConfig cfg; // defaults are the paper's Table 1
    cfg.prefetch.scheme = scheme;
    return cfg;
}

/** Run one workload, asserting that it finished and verified. */
inline apps::Run
runChecked(const std::string &name, const MachineConfig &cfg,
           const apps::RunOptions &opts = {})
{
    apps::Run run = apps::runWorkload(name, cfg, opts);
    if (!run.finished)
        psim_fatal("%s did not finish", name.c_str());
    if (!run.verified)
        psim_fatal("%s failed numerical verification", name.c_str());
    return run;
}

/**
 * Format a prefetch efficiency for a table cell: "0.63"-style, or an
 * em dash when the run issued no prefetches (efficiency is NaN).
 */
inline std::string
fmtEff(double eff, int width = 0)
{
    char buf[32];
    if (std::isnan(eff)) {
        // The em dash is 3 UTF-8 bytes but one display column; widen
        // the field so printf's byte-counting padding still lines up.
        std::snprintf(buf, sizeof(buf), "%*s", width ? width + 2 : 0,
                      "—");
    } else {
        std::snprintf(buf, sizeof(buf), "%*.2f", width, eff);
    }
    return buf;
}

/** Format the dominant strides like the paper: "1(93%), 65(42%)". */
inline std::string
dominantStrides(const StrideCharacterizer::Report &r, unsigned max_entries)
{
    std::string out;
    unsigned shown = 0;
    for (const auto &[stride, fraction] : r.topStrides) {
        if (shown >= max_entries || fraction < 0.05)
            break;
        if (shown)
            out += ", ";
        out += std::to_string(stride) + "(" +
               std::to_string(static_cast<int>(fraction * 100 + 0.5)) +
               "%)";
        ++shown;
    }
    if (out.empty())
        out = "-";
    return out;
}

inline void
hr(unsigned width = 78)
{
    for (unsigned i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace psim::bench

#endif // PSIM_BENCH_COMMON_HH
