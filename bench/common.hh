/**
 * @file
 * Shared helpers for the paper-reproduction benchmark harnesses.
 *
 * Every harness builds the paper's 16-node machine (Table 1 defaults),
 * runs the six applications, and prints its table/figure in the
 * paper's layout. Absolute values depend on the scaled-down inputs
 * (see DESIGN.md); the comparisons between schemes are the result.
 */

#ifndef PSIM_BENCH_COMMON_HH
#define PSIM_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "apps/driver.hh"

namespace psim::bench
{

inline MachineConfig
paperConfig(PrefetchScheme scheme = PrefetchScheme::None)
{
    MachineConfig cfg; // defaults are the paper's Table 1
    cfg.prefetch.scheme = scheme;
    return cfg;
}

/** Run one workload, asserting that it finished and verified. */
inline apps::Run
runChecked(const std::string &name, const MachineConfig &cfg,
           const apps::RunOptions &opts = {})
{
    apps::Run run = apps::runWorkload(name, cfg, opts);
    if (!run.finished)
        psim_fatal("%s did not finish", name.c_str());
    if (!run.verified)
        psim_fatal("%s failed numerical verification", name.c_str());
    return run;
}

/** Format the dominant strides like the paper: "1(93%), 65(42%)". */
inline std::string
dominantStrides(const StrideCharacterizer::Report &r, unsigned max_entries)
{
    std::string out;
    unsigned shown = 0;
    for (const auto &[stride, fraction] : r.topStrides) {
        if (shown >= max_entries || fraction < 0.05)
            break;
        if (shown)
            out += ", ";
        out += std::to_string(stride) + "(" +
               std::to_string(static_cast<int>(fraction * 100 + 0.5)) +
               "%)";
        ++shown;
    }
    if (out.empty())
        out = "-";
    return out;
}

inline void
hr(unsigned width = 78)
{
    for (unsigned i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace psim::bench

#endif // PSIM_BENCH_COMMON_HH
