/**
 * @file
 * Reproduces Table 3: application characteristics with a finite,
 * 16 Kbyte direct-mapped second-level cache.
 *
 * Same methodology as Table 2 plus the share of replacement misses.
 * The paper's headline observation: with a finite SLC, MP3D and Ocean
 * gain large populations of stride-1 replacement misses, which is why
 * finite caches make both stride and sequential prefetching look
 * better on them.
 */

#include "common.hh"

using namespace psim;
using namespace psim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    const WallTimer wall;
    const std::vector<std::string> &workloads = opt.workloads();

    std::vector<std::string> rows(workloads.size());
    runGrid(rows.size(), resolveJobs(opt.jobs), [&](std::size_t i) {
        const std::string &name = workloads[i];
        MachineConfig cfg = paperConfig();
        cfg.slcSize = 16384;
        cfg.slcAssoc = 1;
        apps::RunOptions opts;
        opts.characterize = true;
        apps::Run run = runChecked(name, cfg, opt.runOptions(name, opts));

        auto report = run.machine->characterizer(0)->finalize();
        const Slc &slc = run.machine->node(0).slc();
        double total = slc.demandReadMisses.value();
        double repl = total > 0
                ? 100.0 * slc.missesReplacement.value() / total
                : 0.0;
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "%-10s %11.1f%% %13.1f%% %14.1f %12llu   %s\n",
                      name.c_str(), repl, 100.0 * report.strideFraction,
                      report.avgSequenceLength,
                      static_cast<unsigned long long>(report.totalMisses),
                      dominantStrides(report, 3).c_str());
        rows[i] = buf;
        progress(name.c_str(), "table3");
    });

    std::printf("Table 3: application characteristics, 16 KB "
                "direct-mapped SLC (baseline, 16 procs)\n");
    std::printf("paper reference:  repl%%: MP3D 32 Chol 45 Water 45 "
                "LU 76 Ocean 82 PTHOR 39\n");
    std::printf("                  stride misses rise for MP3D (34%%) "
                "and Ocean (81%%), stride 1 dominates\n\n");
    hr(86);
    std::printf("%-10s %12s %14s %14s %12s   %s\n", "app",
                "repl misses", "stride misses", "avg seq len",
                "read misses", "dominant strides (blocks)");
    hr(86);

    for (const auto &row : rows)
        std::fputs(row.c_str(), stdout);
    hr(86);
    std::printf("\nrepl misses = replacement misses as %% of node 0's "
                "demand read misses.\n");
    wall.report();
    return 0;
}
