/**
 * @file
 * Thin shim: this legacy binary now runs specs/table3.json through the
 * shared spec driver (bench/spec_main.hh). The printed table and its
 * flags are unchanged; the machine-readable output is the canonical
 * psim-results-v1 document (default BENCH_table3.json).
 */

#include "spec_main.hh"

int
main(int argc, char **argv)
{
    return psim::bench::runSpecMain("table3", argc, argv);
}
