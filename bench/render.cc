#include "render.hh"

#include <cstdio>
#include <initializer_list>

#include "common.hh"

namespace psim::bench
{

namespace
{

using spec::AxisValue;
using spec::CellResult;
using spec::Results;
using spec::Spec;

const CellResult &
cellAt(const Spec &s, const Results &r, std::size_t group,
       std::initializer_list<std::size_t> idx)
{
    return r.cells.at(s.cellIndex(group, idx));
}

// ---- Table 2: application characteristics, infinite SLC ----

void
renderTable2(const Spec &s, const Results &r)
{
    const std::vector<AxisValue> &apps = s.axis(0, "app").values;

    std::printf("Table 2: application characteristics, infinite SLC "
                "(baseline, 16 procs, 32 B blocks)\n");
    std::printf("paper reference:  MP3D 9.2%% / 5.2 / 1(76%%)  "
                "Chol 80%% / 7.2 / 1(95%%)  Water 79%% / 8.0 / 21(99%%)\n");
    std::printf("                  LU 93%% / 16.9 / 1(93%%)  "
                "Ocean 66%% / 7.6 / 65(42%%),1(31%%)  "
                "PTHOR 4.1%% / 3.4 / -\n\n");
    hr();
    std::printf("%-10s %14s %14s %12s   %s\n", "app",
                "stride misses", "avg seq len", "read misses",
                "dominant strides (blocks)");
    hr();

    for (std::size_t w = 0; w < apps.size(); ++w) {
        const CellResult &c = cellAt(s, r, 0, {w});
        const auto &report = c.characterizer;
        std::printf("%-10s %13.1f%% %14.1f %12llu   %s\n",
                    apps[w].id.c_str(), 100.0 * report.strideFraction,
                    report.avgSequenceLength,
                    static_cast<unsigned long long>(report.totalMisses),
                    dominantStrides(report, 3).c_str());
    }
    hr();
    std::printf("\nstride misses = %% of demand read misses inside "
                "stride sequences (>=3 equidistant\naccesses from one "
                "load instruction); strides shorter than a block count "
                "as 1 block.\n");
}

// ---- Table 3: application characteristics, 16 KB SLC ----

void
renderTable3(const Spec &s, const Results &r)
{
    const std::vector<AxisValue> &apps = s.axis(0, "app").values;

    std::printf("Table 3: application characteristics, 16 KB "
                "direct-mapped SLC (baseline, 16 procs)\n");
    std::printf("paper reference:  repl%%: MP3D 32 Chol 45 Water 45 "
                "LU 76 Ocean 82 PTHOR 39\n");
    std::printf("                  stride misses rise for MP3D (34%%) "
                "and Ocean (81%%), stride 1 dominates\n\n");
    hr(86);
    std::printf("%-10s %12s %14s %14s %12s   %s\n", "app",
                "repl misses", "stride misses", "avg seq len",
                "read misses", "dominant strides (blocks)");
    hr(86);

    for (std::size_t w = 0; w < apps.size(); ++w) {
        const CellResult &c = cellAt(s, r, 0, {w});
        const auto &report = c.characterizer;
        double total = c.node0DemandReadMisses;
        double repl = total > 0
                ? 100.0 * c.node0ReplacementMisses / total
                : 0.0;
        std::printf("%-10s %11.1f%% %13.1f%% %14.1f %12llu   %s\n",
                    apps[w].id.c_str(), repl,
                    100.0 * report.strideFraction,
                    report.avgSequenceLength,
                    static_cast<unsigned long long>(report.totalMisses),
                    dominantStrides(report, 3).c_str());
    }
    hr(86);
    std::printf("\nrepl misses = replacement misses as %% of node 0's "
                "demand read misses.\n");
}

// ---- Table 4: characteristics for larger data sets ----

const char *
trend(double small, double big, double tol = 0.05)
{
    if (big > small * (1.0 + tol))
        return "higher";
    if (big < small * (1.0 - tol))
        return "lower";
    return "about the same";
}

std::int64_t
dominantStride(const StrideCharacterizer::Report &report)
{
    return report.topStrides.empty() ? 0 : report.topStrides[0].first;
}

void
renderTable4(const Spec &s, const Results &r)
{
    const std::vector<AxisValue> &apps = s.axis(0, "app").values;

    std::printf("Table 4: characteristics for larger data sets, "
                "infinite SLC (scale 1 vs scale 2)\n");
    std::printf("paper expectation: stride fraction higher for "
                "Chol/Water/LU/Ocean, about the same for MP3D;\n"
                "sequence length longer except MP3D (limited); "
                "dominant stride unchanged except Ocean (longer)\n\n");
    hr(96);
    std::printf("%-10s | %21s | %21s | %12s\n", "app",
                "stride misses  s1->s2", "avg seq len    s1->s2",
                "dom stride");
    hr(96);

    for (std::size_t w = 0; w < apps.size(); ++w) {
        const auto &small = cellAt(s, r, 0, {w, 0}).characterizer;
        const auto &big = cellAt(s, r, 0, {w, 1}).characterizer;
        std::printf("%-10s | %5.1f%% -> %5.1f%% %6s | %5.1f -> %5.1f "
                    "%8s | %3lld -> %3lld\n",
                    apps[w].id.c_str(), 100 * small.strideFraction,
                    100 * big.strideFraction,
                    trend(small.strideFraction, big.strideFraction),
                    small.avgSequenceLength, big.avgSequenceLength,
                    trend(small.avgSequenceLength, big.avgSequenceLength),
                    static_cast<long long>(dominantStride(small)),
                    static_cast<long long>(dominantStride(big)));
    }
    hr(96);
}

// ---- Figure 6: the headline scheme comparison ----

/**
 * The five-panel app x scheme comparison grid shared by fig6 and the
 * server-suite variant: same panels, same relative-to-baseline math,
 * only the headline differs. Axis 0 must be app x scheme with the
 * baseline scheme first.
 */
void
renderSchemeGrid(const Spec &s, const Results &r, const char *title)
{
    const std::vector<AxisValue> &apps = s.axis(0, "app").values;
    const std::vector<AxisValue> &schemes = s.axis(0, "scheme").values;

    auto panel = [&](const char *title, auto value) {
        std::printf("\n%s\n", title);
        hr();
        std::printf("%-10s", "app");
        for (const AxisValue &sv : schemes)
            std::printf(" %10s", sv.id.c_str());
        std::printf("\n");
        hr();
        for (std::size_t w = 0; w < apps.size(); ++w) {
            std::printf("%-10s", apps[w].id.c_str());
            const CellResult &base = cellAt(s, r, 0, {w, 0});
            for (std::size_t sc = 0; sc < schemes.size(); ++sc)
                std::printf(" %10s",
                            value(cellAt(s, r, 0, {w, sc}), base).c_str());
            std::printf("\n");
        }
        hr();
    };

    auto rel = [](double v, double base) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", base > 0 ? v / base : 1.0);
        return std::string(buf);
    };

    std::printf("%s\n", title);

    panel("(top) read misses relative to the baseline architecture",
          [&](const CellResult &c, const CellResult &base) {
              return rel(c.metrics.readMisses, base.metrics.readMisses);
          });

    panel("(middle) prefetch efficiency (useful / issued prefetches)",
          [](const CellResult &c, const CellResult &) {
              return fmtEff(c.metrics.prefetchEfficiency());
          });

    panel("(bottom) read stall time relative to the baseline",
          [&](const CellResult &c, const CellResult &base) {
              return rel(c.metrics.readStall, base.metrics.readStall);
          });

    panel("(support) network traffic (flits) relative to the baseline",
          [&](const CellResult &c, const CellResult &base) {
              return rel(c.metrics.flits, base.metrics.flits);
          });

    panel("(support) execution time relative to the baseline",
          [&](const CellResult &c, const CellResult &base) {
              return rel(static_cast<double>(c.metrics.execTicks),
                         static_cast<double>(base.metrics.execTicks));
          });

    std::printf("\nAll %zu runs verified numerically against native "
                "references.\n", r.cells.size());
}

void
renderFig6(const Spec &s, const Results &r)
{
    renderSchemeGrid(s, r,
                     "Figure 6: stride vs. sequential prefetching "
                     "(16 procs, infinite SLC, d = 1)");
}

// ---- Server suite: request-stream characteristics ----

void
renderServerTable2(const Spec &s, const Results &r)
{
    const std::vector<AxisValue> &apps = s.axis(0, "app").values;
    const std::vector<AxisValue> &thetas =
            s.axis(0, "server.zipfTheta").values;

    std::printf("Server suite: request-stream characteristics, "
                "infinite SLC (baseline, 16 procs, 32 B blocks)\n");
    std::printf("Zipf key skew theta per row; every request stream is "
                "a pure function of (seed, thread, index)\n\n");
    hr(92);
    std::printf("%-10s %8s %14s %14s %12s   %s\n", "app", "theta",
                "stride misses", "avg seq len", "read misses",
                "dominant strides (blocks)");
    hr(92);

    for (std::size_t w = 0; w < apps.size(); ++w) {
        for (std::size_t t = 0; t < thetas.size(); ++t) {
            const CellResult &c = cellAt(s, r, 0, {w, t});
            const auto &report = c.characterizer;
            std::printf("%-10s %8s %13.1f%% %14.1f %12llu   %s\n",
                        apps[w].id.c_str(), thetas[t].id.c_str(),
                        100.0 * report.strideFraction,
                        report.avgSequenceLength,
                        static_cast<unsigned long long>(
                                report.totalMisses),
                        dominantStrides(report, 3).c_str());
        }
        hr(92);
    }
    std::printf("\nstride misses = %% of demand read misses inside "
                "stride sequences (>=3 equidistant\naccesses from one "
                "load instruction); strides shorter than a block count "
                "as 1 block.\n");
}

// ---- Server suite: the fig6 grid over the server workloads ----

void
renderServerFig6(const Spec &s, const Results &r)
{
    renderSchemeGrid(s, r,
                     "Server suite: stride vs. sequential prefetching "
                     "(16 procs, infinite SLC, d = 1)");
}

// ---- Extension: next-generation schemes over the server suite ----

void
renderNextgen(const Spec &s, const Results &r)
{
    renderSchemeGrid(s, r,
                     "Extension: pointer-chase, multi-stride and "
                     "perceptron-filtered prefetching on the server "
                     "suite (16 procs, infinite SLC, d = 1)");
}

// ---- Ablation: block size ----

void
renderBlocksize(const Spec &s, const Results &r)
{
    const std::vector<AxisValue> &apps = s.axis(0, "app").values;
    const std::vector<AxisValue> &blocks = s.axis(0, "blockSize").values;

    std::printf("Ablation: block size 32 B vs 128 B (16 procs, "
                "infinite SLC, d = 1)\n");
    std::printf("paper: larger blocks make sequential prefetching "
                "effective for larger strides\n\n");
    hr(92);
    std::printf("%-10s %6s %14s %14s %14s %14s\n", "app", "block",
                "base misses", "seq misses", "seq rel", "seq pf eff");
    hr(92);

    for (std::size_t w = 0; w < apps.size(); ++w) {
        for (std::size_t b = 0; b < blocks.size(); ++b) {
            const CellResult &base = cellAt(s, r, 0, {w, 0, b});
            const CellResult &seq = cellAt(s, r, 0, {w, 1, b});
            unsigned block = static_cast<unsigned>(
                    blocks[b].scalar.asNumber("blockSize"));
            std::printf("%-10s %5uB %14.0f %14.0f %14.2f %s\n",
                        apps[w].id.c_str(), block,
                        base.metrics.readMisses, seq.metrics.readMisses,
                        seq.metrics.readMisses / base.metrics.readMisses,
                        fmtEff(seq.metrics.prefetchEfficiency(), 14)
                                .c_str());
        }
        hr(92);
    }
}

// ---- Ablation: degree of prefetching ----

void
renderDegree(const Spec &s, const Results &r)
{
    const std::vector<AxisValue> &apps = s.axis(0, "app").values;
    const std::vector<AxisValue> &schemes = s.axis(1, "scheme").values;
    const std::vector<AxisValue> &degrees =
            s.axis(1, "prefetch.degree").values;

    std::printf("Ablation: degree of prefetching d (16 procs, "
                "infinite SLC)\n");
    std::printf("paper: \"little difference between different values "
                "of d\" for this prefetch phase\n\n");
    hr(92);
    std::printf("%-8s %-7s %4s %14s %14s %10s %12s\n", "app", "scheme",
                "d", "rel misses", "rel stall", "pf eff", "rel flits");
    hr(92);

    for (std::size_t w = 0; w < apps.size(); ++w) {
        const CellResult &base = cellAt(s, r, 0, {w, 0});
        for (std::size_t sc = 0; sc < schemes.size(); ++sc) {
            for (std::size_t di = 0; di < degrees.size(); ++di) {
                const CellResult &run = cellAt(s, r, 1, {w, sc, di});
                unsigned d = static_cast<unsigned>(
                        degrees[di].scalar.asNumber("prefetch.degree"));
                std::printf("%-8s %-7s %4u %14.2f %14.2f %s "
                            "%12.2f\n",
                            apps[w].id.c_str(), schemes[sc].id.c_str(), d,
                            run.metrics.readMisses /
                                    base.metrics.readMisses,
                            run.metrics.readStall /
                                    base.metrics.readStall,
                            fmtEff(run.metrics.prefetchEfficiency(), 10)
                                    .c_str(),
                            run.metrics.flits / base.metrics.flits);
            }
        }
        hr(92);
    }
}

// ---- Extension: adaptive sequential prefetching ----

void
renderAdaptive(const Spec &s, const Results &r)
{
    const std::vector<AxisValue> &apps = s.axis(0, "app").values;
    const std::vector<AxisValue> &schemes = s.axis(1, "scheme").values;

    std::printf("Extension: adaptive sequential prefetching "
                "(16 procs, infinite SLC)\n\n");
    hr(92);
    std::printf("%-10s %-9s %12s %12s %10s %12s\n", "app", "scheme",
                "rel misses", "rel stall", "pf eff", "rel flits");
    hr(92);

    for (std::size_t w = 0; w < apps.size(); ++w) {
        const CellResult &base = cellAt(s, r, 0, {w, 0});
        for (std::size_t sc = 0; sc < schemes.size(); ++sc) {
            const CellResult &run = cellAt(s, r, 1, {w, sc});
            std::printf("%-10s %-9s %12.2f %12.2f %s %12.2f\n",
                        apps[w].id.c_str(), schemes[sc].id.c_str(),
                        run.metrics.readMisses / base.metrics.readMisses,
                        run.metrics.readStall / base.metrics.readStall,
                        fmtEff(run.metrics.prefetchEfficiency(), 10)
                                .c_str(),
                        run.metrics.flits / base.metrics.flits);
        }
        hr(92);
    }
}

// ---- Extension: tagged-continuation vs lookahead-PC I-det ----

void
renderLookahead(const Spec &s, const Results &r)
{
    const std::vector<AxisValue> &apps = s.axis(0, "app").values;
    const std::vector<AxisValue> &variants = s.axis(1, "variant").values;

    std::printf("Extension: tagged-continuation I-det vs lookahead-PC "
                "I-det (16 procs, infinite SLC)\n\n");
    hr(92);
    std::printf("%-10s %-10s %4s %12s %12s %10s %12s\n", "app",
                "scheme", "LA", "rel misses", "rel stall", "pf eff",
                "rel flits");
    hr(92);

    for (std::size_t w = 0; w < apps.size(); ++w) {
        const CellResult &base = cellAt(s, r, 0, {w, 0});
        for (std::size_t v = 0; v < variants.size(); ++v) {
            const CellResult &run = cellAt(s, r, 1, {w, v});
            const char *scheme =
                    variants[v].id == "idet" ? "i-det" : "i-det-la";
            std::printf("%-10s %-10s %4s %12.2f %12.2f %s %12.2f\n",
                        apps[w].id.c_str(), scheme,
                        variants[v].label.c_str(),
                        run.metrics.readMisses / base.metrics.readMisses,
                        run.metrics.readStall / base.metrics.readStall,
                        fmtEff(run.metrics.prefetchEfficiency(), 10)
                                .c_str(),
                        run.metrics.flits / base.metrics.flits);
        }
        hr(92);
    }
    std::printf("\npaper's claim: for long stride sequences the two "
                "mechanisms are nearly identical.\n");
}

// ---- Extension: consistency model and migratory optimization ----

void
renderProtocol(const Spec &s, const Results &r)
{
    const std::vector<AxisValue> &apps1 = s.axis(0, "app").values;
    const std::vector<AxisValue> &models = s.axis(0, "model").values;
    const std::vector<AxisValue> &schemes1 = s.axis(0, "scheme").values;

    std::printf("Part 1: release vs sequential consistency "
                "(16 procs, infinite SLC)\n\n");
    hr(92);
    std::printf("%-8s %-6s %-9s %12s %12s %12s\n", "app", "model",
                "scheme", "exec ticks", "write stall", "read stall");
    hr(92);
    for (std::size_t w = 0; w < apps1.size(); ++w) {
        for (std::size_t m = 0; m < models.size(); ++m) {
            for (std::size_t sc = 0; sc < schemes1.size(); ++sc) {
                const CellResult &run = cellAt(s, r, 0, {w, m, sc});
                std::printf("%-8s %-6s %-9s %12llu %12.0f %12.0f\n",
                            apps1[w].id.c_str(), models[m].label.c_str(),
                            schemes1[sc].id.c_str(),
                            static_cast<unsigned long long>(
                                    run.metrics.execTicks),
                            run.writeStall, run.metrics.readStall);
            }
        }
        hr(92);
    }

    const std::vector<AxisValue> &apps2 = s.axis(1, "app").values;
    const std::vector<AxisValue> &dirs = s.axis(1, "dir").values;
    const std::vector<AxisValue> &schemes2 = s.axis(1, "scheme").values;

    std::printf("\nPart 2: migratory-sharing optimization "
                "(16 procs, infinite SLC)\n\n");
    hr(92);
    std::printf("%-8s %-10s %-9s %12s %12s %12s %12s\n", "app", "dir",
                "scheme", "exec ticks", "upgrades", "mig grants",
                "net flits");
    hr(92);
    for (std::size_t w = 0; w < apps2.size(); ++w) {
        for (std::size_t d = 0; d < dirs.size(); ++d) {
            for (std::size_t sc = 0; sc < schemes2.size(); ++sc) {
                const CellResult &run = cellAt(s, r, 1, {w, d, sc});
                std::printf("%-8s %-10s %-9s %12llu %12.0f %12.0f "
                            "%12.0f\n",
                            apps2[w].id.c_str(), dirs[d].label.c_str(),
                            schemes2[sc].id.c_str(),
                            static_cast<unsigned long long>(
                                    run.metrics.execTicks),
                            run.upgrades, run.migratoryGrants,
                            run.metrics.flits);
            }
        }
        hr(92);
    }
}

// ---- Sensitivity: architectural parameters ----

void
renderSensitivity(const Spec &s, const Results &r)
{
    const std::vector<AxisValue> &points = s.axis(0, "point").values;
    const std::vector<AxisValue> &apps = s.axis(0, "app").values;

    std::printf("Sensitivity: does the seq-vs-stride winner survive "
                "parameter changes?\n");
    std::printf("(expected: seq wins LU, i-det wins Ocean, at every "
                "point)\n\n");
    hr(86);
    std::printf("%-26s %-6s %12s %12s\n", "configuration", "app",
                "seq misses", "idet misses");
    hr(86);
    for (std::size_t p = 0; p < points.size(); ++p) {
        for (std::size_t w = 0; w < apps.size(); ++w) {
            const CellResult &base = cellAt(s, r, 0, {p, w, 0});
            const CellResult &seq = cellAt(s, r, 0, {p, w, 1});
            const CellResult &idet = cellAt(s, r, 0, {p, w, 2});
            const char *winner =
                    seq.metrics.readMisses < idet.metrics.readMisses
                            ? "seq" : "i-det";
            std::printf("%-26s %-6s %12.2f %12.2f   winner: %s\n",
                        points[p].label.c_str(), apps[w].id.c_str(),
                        seq.metrics.readMisses / base.metrics.readMisses,
                        idet.metrics.readMisses /
                                base.metrics.readMisses,
                        winner);
        }
    }
    hr(86);
}

void
renderNone(const Spec &, const Results &)
{
}

struct Entry
{
    const char *id;
    Renderer fn;
};

constexpr Entry kRenderers[] = {
    {"table2", renderTable2},
    {"table3", renderTable3},
    {"table4", renderTable4},
    {"fig6", renderFig6},
    {"server_table2", renderServerTable2},
    {"server_fig6", renderServerFig6},
    {"ablation_blocksize", renderBlocksize},
    {"ablation_degree", renderDegree},
    {"extension_adaptive", renderAdaptive},
    {"extension_lookahead", renderLookahead},
    {"extension_protocol", renderProtocol},
    {"extension_nextgen", renderNextgen},
    {"sensitivity_arch", renderSensitivity},
    {"none", renderNone},
};

} // namespace

Renderer
findRenderer(const std::string &report)
{
    for (const Entry &e : kRenderers) {
        if (report == e.id)
            return e.fn;
    }
    return nullptr;
}

std::string
knownReports()
{
    std::string out;
    for (const Entry &e : kRenderers) {
        if (!out.empty())
            out += ", ";
        out += e.id;
    }
    return out;
}

} // namespace psim::bench
