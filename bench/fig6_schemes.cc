/**
 * @file
 * Reproduces Figure 6, the paper's headline result: for each of the
 * six applications and each prefetching scheme (I-det, D-det, Seq,
 * all with degree d = 1),
 *
 *   (top)    the number of read misses relative to the baseline,
 *   (middle) the prefetch efficiency (useful / issued prefetches),
 *   (bottom) the read stall time relative to the baseline,
 *
 * plus network traffic as supporting data for the paper's bandwidth
 * argument. Expected shape: sequential prefetching removes the most
 * misses everywhere except Ocean (large strides) and PTHOR (no
 * locality); I-detection has the best prefetch efficiency; stride
 * prefetching generates less useless traffic.
 *
 * The 6 x 4 grid cells are independent simulations and run on
 * `--jobs` threads (default: PSIM_JOBS, else hardware concurrency);
 * the tables are printed from collected results in grid order, so the
 * output is byte-identical to a serial run. `--json` (default
 * BENCH_fig6.json) emits the machine-readable results.
 */

#include <limits>
#include <map>

#include "common.hh"

using namespace psim;
using namespace psim::bench;

namespace
{

struct Cell
{
    double misses = 0;
    double stall = 0;
    double eff = std::numeric_limits<double>::quiet_NaN();
    double flits = 0;
    Tick exec = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    if (opt.jsonPath.empty())
        opt.jsonPath = "BENCH_fig6.json";
    const unsigned jobs = resolveJobs(opt.jobs);

    const std::vector<PrefetchScheme> schemes = {
        PrefetchScheme::None, PrefetchScheme::IDet, PrefetchScheme::DDet,
        PrefetchScheme::Sequential};
    const std::vector<std::string> &workloads = opt.workloads();

    const WallTimer wall;

    std::vector<Cell> cells(workloads.size() * schemes.size());
    runGrid(cells.size(), jobs, [&](std::size_t i) {
        const std::string &name = workloads[i / schemes.size()];
        PrefetchScheme scheme = schemes[i % schemes.size()];
        MachineConfig cfg = paperConfig(scheme);
        opt.applyMachine(cfg);
        apps::Run run = runChecked(name, cfg,
                opt.runOptions(name + "-" + toString(scheme)));
        Cell c;
        c.misses = run.metrics.readMisses;
        c.stall = run.metrics.readStall;
        c.eff = run.metrics.prefetchEfficiency();
        c.flits = run.metrics.flits;
        c.exec = run.metrics.execTicks;
        cells[i] = c;
        progress(name.c_str(), toString(scheme));
    });

    const double wall_seconds = wall.seconds();

    std::map<std::string, std::map<PrefetchScheme, Cell>> grid;
    for (std::size_t i = 0; i < cells.size(); ++i)
        grid[workloads[i / schemes.size()]][schemes[i % schemes.size()]] =
                cells[i];

    auto panel = [&](const char *title,
                     auto value) {
        std::printf("\n%s\n", title);
        hr();
        std::printf("%-10s", "app");
        for (PrefetchScheme s : schemes)
            std::printf(" %10s", toString(s));
        std::printf("\n");
        hr();
        for (const auto &name : workloads) {
            std::printf("%-10s", name.c_str());
            for (PrefetchScheme s : schemes)
                std::printf(" %10s",
                            value(grid[name][s], grid[name][schemes[0]])
                                    .c_str());
            std::printf("\n");
        }
        hr();
    };

    std::printf("Figure 6: stride vs. sequential prefetching "
                "(16 procs, infinite SLC, d = 1)\n");

    panel("(top) read misses relative to the baseline architecture",
          [](const Cell &c, const Cell &base) {
              char buf[32];
              std::snprintf(buf, sizeof(buf), "%.2f",
                            base.misses > 0 ? c.misses / base.misses
                                            : 1.0);
              return std::string(buf);
          });

    panel("(middle) prefetch efficiency (useful / issued prefetches)",
          [](const Cell &c, const Cell &) { return fmtEff(c.eff); });

    panel("(bottom) read stall time relative to the baseline",
          [](const Cell &c, const Cell &base) {
              char buf[32];
              std::snprintf(buf, sizeof(buf), "%.2f",
                            base.stall > 0 ? c.stall / base.stall : 1.0);
              return std::string(buf);
          });

    panel("(support) network traffic (flits) relative to the baseline",
          [](const Cell &c, const Cell &base) {
              char buf[32];
              std::snprintf(buf, sizeof(buf), "%.2f",
                            base.flits > 0 ? c.flits / base.flits : 1.0);
              return std::string(buf);
          });

    panel("(support) execution time relative to the baseline",
          [](const Cell &c, const Cell &base) {
              char buf[32];
              std::snprintf(buf, sizeof(buf), "%.2f",
                            base.exec > 0 ? static_cast<double>(c.exec) /
                                            static_cast<double>(base.exec)
                                          : 1.0);
              return std::string(buf);
          });

    JsonWriter json;
    json.beginObject();
    json.field("bench", std::string("fig6_schemes"));
    json.field("jobs", static_cast<double>(jobs));
    json.field("shards", static_cast<double>(opt.shards));
    json.field("wall_seconds", wall_seconds);
    json.beginObject("apps");
    for (const auto &name : workloads) {
        const Cell &base = grid[name][schemes[0]];
        json.beginObject(name);
        for (PrefetchScheme s : schemes) {
            const Cell &c = grid[name][s];
            json.beginObject(toString(s));
            json.field("rel_read_misses",
                       base.misses > 0 ? c.misses / base.misses : 1.0);
            json.field("efficiency", c.eff);
            json.field("rel_read_stall",
                       base.stall > 0 ? c.stall / base.stall : 1.0);
            json.field("rel_flits",
                       base.flits > 0 ? c.flits / base.flits : 1.0);
            json.field("rel_exec",
                       base.exec > 0 ? static_cast<double>(c.exec) /
                                       static_cast<double>(base.exec)
                                     : 1.0);
            json.endObject();
        }
        json.endObject();
    }
    json.endObject();
    json.endObject();
    json.write(opt.jsonPath);

    std::printf("\nAll %zu runs verified numerically against native "
                "references.\n", cells.size());
    std::fprintf(stderr, "grid wall-clock: %.2fs with %u jobs "
                 "(results: %s)\n", wall_seconds, jobs,
                 opt.jsonPath.c_str());
    return 0;
}
