/**
 * @file
 * Reproduces Figure 6, the paper's headline result: for each of the
 * six applications and each prefetching scheme (I-det, D-det, Seq,
 * all with degree d = 1),
 *
 *   (top)    the number of read misses relative to the baseline,
 *   (middle) the prefetch efficiency (useful / issued prefetches),
 *   (bottom) the read stall time relative to the baseline,
 *
 * plus network traffic as supporting data for the paper's bandwidth
 * argument. Expected shape: sequential prefetching removes the most
 * misses everywhere except Ocean (large strides) and PTHOR (no
 * locality); I-detection has the best prefetch efficiency; stride
 * prefetching generates less useless traffic.
 */

#include <map>

#include "common.hh"

using namespace psim;
using namespace psim::bench;

namespace
{

struct Cell
{
    double misses = 0;
    double stall = 0;
    double eff = 1.0;
    double flits = 0;
    Tick exec = 0;
};

} // namespace

int
main()
{
    const std::vector<PrefetchScheme> schemes = {
        PrefetchScheme::None, PrefetchScheme::IDet, PrefetchScheme::DDet,
        PrefetchScheme::Sequential};

    std::map<std::string, std::map<PrefetchScheme, Cell>> grid;

    for (const auto &name : apps::paperWorkloads()) {
        for (PrefetchScheme scheme : schemes) {
            apps::Run run = runChecked(name, paperConfig(scheme));
            Cell c;
            c.misses = run.metrics.readMisses;
            c.stall = run.metrics.readStall;
            c.eff = run.metrics.prefetchEfficiency();
            c.flits = run.metrics.flits;
            c.exec = run.metrics.execTicks;
            grid[name][scheme] = c;
            std::fprintf(stderr, "  ran %-9s %-9s\n", name.c_str(),
                         toString(scheme));
        }
    }

    auto panel = [&](const char *title,
                     auto value) {
        std::printf("\n%s\n", title);
        hr();
        std::printf("%-10s", "app");
        for (PrefetchScheme s : schemes)
            std::printf(" %10s", toString(s));
        std::printf("\n");
        hr();
        for (const auto &name : apps::paperWorkloads()) {
            std::printf("%-10s", name.c_str());
            for (PrefetchScheme s : schemes)
                std::printf(" %10s",
                            value(grid[name][s], grid[name][schemes[0]])
                                    .c_str());
            std::printf("\n");
        }
        hr();
    };

    std::printf("Figure 6: stride vs. sequential prefetching "
                "(16 procs, infinite SLC, d = 1)\n");

    panel("(top) read misses relative to the baseline architecture",
          [](const Cell &c, const Cell &base) {
              char buf[32];
              std::snprintf(buf, sizeof(buf), "%.2f",
                            base.misses > 0 ? c.misses / base.misses
                                            : 1.0);
              return std::string(buf);
          });

    panel("(middle) prefetch efficiency (useful / issued prefetches)",
          [](const Cell &c, const Cell &) {
              char buf[32];
              std::snprintf(buf, sizeof(buf), "%.2f", c.eff);
              return std::string(buf);
          });

    panel("(bottom) read stall time relative to the baseline",
          [](const Cell &c, const Cell &base) {
              char buf[32];
              std::snprintf(buf, sizeof(buf), "%.2f",
                            base.stall > 0 ? c.stall / base.stall : 1.0);
              return std::string(buf);
          });

    panel("(support) network traffic (flits) relative to the baseline",
          [](const Cell &c, const Cell &base) {
              char buf[32];
              std::snprintf(buf, sizeof(buf), "%.2f",
                            base.flits > 0 ? c.flits / base.flits : 1.0);
              return std::string(buf);
          });

    panel("(support) execution time relative to the baseline",
          [](const Cell &c, const Cell &base) {
              char buf[32];
              std::snprintf(buf, sizeof(buf), "%.2f",
                            base.exec > 0 ? static_cast<double>(c.exec) /
                                            static_cast<double>(base.exec)
                                          : 1.0);
              return std::string(buf);
          });

    std::printf("\nAll 24 runs verified numerically against native "
                "references.\n");
    return 0;
}
