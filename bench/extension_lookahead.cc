/**
 * @file
 * Extension (paper Section 6): the paper's tagged-continuation
 * I-detection vs the original Baer/Chen lookahead-PC mechanism.
 *
 * The paper argues: "if the stride sequences are long, and the number
 * of misses to detect a stride becomes insignificant, the
 * effectiveness of the I-detection scheme evaluated in this paper and
 * the scheme by Baer and Chen will be nearly identical." This harness
 * measures that claim, sweeping the lookahead distance as supporting
 * data.
 */

#include "common.hh"

using namespace psim;
using namespace psim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    const WallTimer wall;
    std::printf("Extension: tagged-continuation I-det vs lookahead-PC "
                "I-det (16 procs, infinite SLC)\n\n");
    hr(92);
    std::printf("%-10s %-10s %4s %12s %12s %10s %12s\n", "app",
                "scheme", "LA", "rel misses", "rel stall", "pf eff",
                "rel flits");
    hr(92);

    for (const auto &name : opt.workloads()) {
        apps::Run base = runChecked(name, paperConfig(),
                opt.runOptions(name + "-base"));

        apps::Run idet = runChecked(name, paperConfig(PrefetchScheme::IDet),
                opt.runOptions(name + "-idet"));
        std::printf("%-10s %-10s %4s %12.2f %12.2f %s %12.2f\n",
                    name.c_str(), "i-det", "-",
                    idet.metrics.readMisses / base.metrics.readMisses,
                    idet.metrics.readStall / base.metrics.readStall,
                    fmtEff(idet.metrics.prefetchEfficiency(), 10).c_str(),
                    idet.metrics.flits / base.metrics.flits);

        for (unsigned la : {1u, 2u, 4u}) {
            MachineConfig cfg = paperConfig(PrefetchScheme::IDetLookahead);
            cfg.prefetch.lookaheadStrides = la;
            apps::Run run = runChecked(name, cfg,
                    opt.runOptions(name + "-la" + std::to_string(la)));
            std::printf("%-10s %-10s %4u %12.2f %12.2f %s %12.2f\n",
                        name.c_str(), "i-det-la", la,
                        run.metrics.readMisses / base.metrics.readMisses,
                        run.metrics.readStall / base.metrics.readStall,
                        fmtEff(run.metrics.prefetchEfficiency(),
                               10).c_str(),
                        run.metrics.flits / base.metrics.flits);
        }
        hr(92);
    }
    std::printf("\npaper's claim: for long stride sequences the two "
                "mechanisms are nearly identical.\n");
    wall.report();
    return 0;
}
