/**
 * @file
 * Extension: the architectural assumptions around the prefetching
 * study, quantified.
 *
 * Part 1 -- memory consistency. The paper assumes release consistency
 * (Section 4, citing Gharachorloo et al.), noting that write latency
 * "can easily be hidden by appropriate write buffers and relaxed
 * memory consistency models". Running the same applications under
 * sequential consistency shows what that assumption is worth, and
 * that prefetching helps the read side either way.
 *
 * Part 2 -- migratory-sharing optimization. The authors' ISCA'94
 * companion paper combines prefetching with simple protocol
 * extensions; the migratory optimization (readers of a migrating
 * block receive an exclusive copy) eliminates the upgrade traffic of
 * lock-protected data. Radix (whose permutation phases migrate key
 * blocks between writers) and PTHOR (locked queue counters) show the
 * effect; MP3D's read-shared cells are the negative control.
 */

#include "common.hh"

using namespace psim;
using namespace psim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    const WallTimer wall;
    std::printf("Part 1: release vs sequential consistency "
                "(16 procs, infinite SLC)\n\n");
    hr(92);
    std::printf("%-8s %-6s %-9s %12s %12s %12s\n", "app", "model",
                "scheme", "exec ticks", "write stall", "read stall");
    hr(92);
    for (const char *app : {"lu", "ocean"}) {
        for (bool sc : {false, true}) {
            for (const char *scheme : {"none", "seq"}) {
                MachineConfig cfg = paperConfig(parseScheme(scheme));
                cfg.sequentialConsistency = sc;
                apps::Run run = runChecked(app, cfg,
                        opt.runOptions(std::string(app) + "-" +
                                       (sc ? "sc" : "rc") + "-" + scheme));
                double wstall = 0;
                for (NodeId n = 0; n < cfg.numProcs; ++n) {
                    wstall += run.machine->node(n)
                                      .cpu().writeStall.value();
                }
                std::printf("%-8s %-6s %-9s %12llu %12.0f %12.0f\n",
                            app, sc ? "SC" : "RC", scheme,
                            static_cast<unsigned long long>(
                                    run.metrics.execTicks),
                            wstall, run.metrics.readStall);
            }
        }
        hr(92);
    }

    std::printf("\nPart 2: migratory-sharing optimization "
                "(16 procs, infinite SLC)\n\n");
    hr(92);
    std::printf("%-8s %-10s %-9s %12s %12s %12s %12s\n", "app", "dir",
                "scheme", "exec ticks", "upgrades", "mig grants",
                "net flits");
    hr(92);
    for (const char *app : {"radix", "pthor", "mp3d"}) {
        for (bool mig : {false, true}) {
            for (const char *scheme : {"none", "seq"}) {
                MachineConfig cfg = paperConfig(parseScheme(scheme));
                cfg.migratoryOpt = mig;
                apps::Run run = runChecked(app, cfg,
                        opt.runOptions(std::string(app) + "-" +
                                       (mig ? "mig" : "plain") + "-" +
                                       scheme));
                double upgrades = 0, grants = 0;
                for (NodeId n = 0; n < cfg.numProcs; ++n) {
                    upgrades += run.machine->node(n)
                                        .slc().upgrades.value();
                    grants += run.machine->node(n)
                                      .mem().migratoryGrants.value();
                }
                std::printf("%-8s %-10s %-9s %12llu %12.0f %12.0f "
                            "%12.0f\n",
                            app, mig ? "migratory" : "plain", scheme,
                            static_cast<unsigned long long>(
                                    run.metrics.execTicks),
                            upgrades, grants, run.metrics.flits);
            }
        }
        hr(92);
    }
    wall.report();
    return 0;
}
