#include "spec_main.hh"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common.hh"
#include "render.hh"
#include "sim/spec.hh"

namespace psim::bench
{

namespace
{

/** A path (contains '/' or ends in .json) passes through verbatim. */
std::string
resolveSpecPath(const std::string &name_or_path)
{
    if (name_or_path.find('/') != std::string::npos)
        return name_or_path;
    if (name_or_path.size() > 5 &&
        name_or_path.compare(name_or_path.size() - 5, 5, ".json") == 0)
        return name_or_path;
    const char *dir = std::getenv("PSIM_SPEC_DIR");
#ifdef PSIM_SPEC_DIR
    if (!dir || !*dir)
        dir = PSIM_SPEC_DIR;
#endif
    if (!dir || !*dir)
        psim_fatal("cannot resolve spec '%s': set PSIM_SPEC_DIR or pass "
                   "a path", name_or_path.c_str());
    return std::string(dir) + "/" + name_or_path + ".json";
}

void
writeDocument(const std::string &path, const std::string &doc)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        psim_fatal("cannot write %s", path.c_str());
    std::fputs(doc.c_str(), f);
    std::fclose(f);
}

} // namespace

int
runSpecMain(const char *default_spec, int argc, char **argv)
{
    BenchOptions opt = parseBenchArgs(argc, argv);
    if (opt.spec.empty() && default_spec)
        opt.spec = default_spec;
    if (opt.spec.empty())
        psim_fatal("--spec NAME|PATH is required (known reports: %s)",
                   knownReports().c_str());

    spec::Spec sp = spec::loadSpec(resolveSpecPath(opt.spec));
    sp.overrideApps(opt.apps);

    Renderer render = findRenderer(sp.report);
    if (!render)
        psim_fatal("spec '%s': unknown report '%s' (known: %s)",
                   sp.name.c_str(), sp.report.c_str(),
                   knownReports().c_str());

    spec::ExecOptions exec;
    exec.jobs = opt.jobs;
    exec.shards = opt.shards;
    exec.procs = opt.procs;
    exec.obs = opt.obs;

    spec::Results results = spec::runSpec(sp, exec);
    render(sp, results);

    const std::string out = opt.jsonPath.empty()
            ? "BENCH_" + sp.name + ".json"
            : opt.jsonPath;
    writeDocument(out, spec::resultsDocument(sp, exec, results));

    std::fprintf(stderr, "grid wall-clock: %.2fs with %u jobs "
                 "(results: %s)\n", results.wallSeconds, results.jobs,
                 out.c_str());
    return 0;
}

} // namespace psim::bench
