/**
 * @file
 * Entry point shared by bench/run_spec and the legacy shim binaries.
 *
 * runSpecMain() parses the common bench flags, loads a psim-spec-v1
 * experiment spec (by name from the spec directory, or by path), runs
 * it through spec::runSpec(), prints the report renderer's table on
 * stdout, and writes the canonical psim-results-v1 document (default
 * BENCH_<name>.json, override with --json/--out).
 *
 * The spec directory is $PSIM_SPEC_DIR when set, else the repository's
 * specs/ directory baked in at configure time (PSIM_SPEC_DIR compile
 * definition).
 */

#ifndef PSIM_BENCH_SPEC_MAIN_HH
#define PSIM_BENCH_SPEC_MAIN_HH

namespace psim::bench
{

/**
 * Run the spec named by --spec (falling back to @p default_spec, which
 * may be nullptr for the generic run_spec binary). Returns the process
 * exit code.
 */
int runSpecMain(const char *default_spec, int argc, char **argv);

} // namespace psim::bench

#endif // PSIM_BENCH_SPEC_MAIN_HH
