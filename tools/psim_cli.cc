/**
 * @file
 * psim command-line driver: run any workload under any configuration,
 * print the paper's metrics, and optionally dump full statistics,
 * Table-2 characteristics, or a reference trace.
 *
 * Usage:
 *   psim_cli [options]
 *     --workload NAME    mp3d|cholesky|water|lu|ocean|pthor|matmul|fft
 *     --scheme NAME      none|seq|idet|ddet|adaptive|idet-la
 *     --degree N         degree of prefetching (default 1)
 *     --procs N          processors (default 16)
 *     --slc BYTES        SLC size, 0 = infinite (default 0)
 *     --block BYTES      cache block size (default 32)
 *     --scale N          data-set scale (default 1)
 *     --seed N           PRNG seed (default 12345)
 *     --stats            dump per-node statistics
 *     --characterize     print Table-2 style characteristics (node 0)
 *     --trace FILE       write the SLC reference trace to FILE
 *
 * plus the shared observability flags (paths used verbatim here):
 *     --stats-json FILE      schema'd JSON statistics dump
 *     --sample-interval N    sample scalars every N ticks
 *     --sample-csv FILE      sampler time series as CSV
 *     --chrome-trace FILE    chrome://tracing event file
 *     --chrome-window A:B    restrict chrome-trace recording to [A, B]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "sim/logging.hh"
#include "sim/sampler.hh"
#include "trace/chrome_trace.hh"

#include "apps/driver.hh"
#include "trace/trace.hh"

using namespace psim;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
            "usage: %s [--workload NAME] [--scheme NAME] [--degree N]\n"
            "          [--procs N] [--slc BYTES] [--block BYTES]\n"
            "          [--scale N] [--seed N] [--stats]\n"
            "          [--characterize] [--trace FILE]\n"
            "          [--stats-json FILE] [--sample-interval N]\n"
            "          [--sample-csv FILE] [--chrome-trace FILE]\n"
            "          [--chrome-window A:B]\n", argv0);
    std::exit(2);
}

/** Open @p path for writing and stream @p emit into it (fatal on error). */
template <typename Emit>
void
writeFile(const std::string &path, Emit emit)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        psim_fatal("cannot write %s", path.c_str());
    emit(out);
    out.flush();
    if (!out)
        psim_fatal("write to %s failed", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "lu";
    std::string trace_path;
    bool dump_stats = false;
    bool characterize = false;
    MachineConfig cfg;
    apps::RunOptions opts;
    apps::ObservabilityOptions obs;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (obs.parseArg(argc, argv, &i)) {
            // consumed an observability flag
        } else if (arg == "--workload") {
            workload = value();
        } else if (arg == "--scheme") {
            cfg.prefetch.scheme = parseScheme(value());
        } else if (arg == "--degree") {
            cfg.prefetch.degree = static_cast<unsigned>(atoi(value()));
        } else if (arg == "--procs") {
            cfg.numProcs = static_cast<unsigned>(atoi(value()));
            if (cfg.numProcs < 4)
                cfg.meshCols = cfg.numProcs;
        } else if (arg == "--slc") {
            cfg.slcSize = static_cast<unsigned>(atoi(value()));
        } else if (arg == "--block") {
            cfg.blockSize = static_cast<unsigned>(atoi(value()));
        } else if (arg == "--scale") {
            opts.scale = static_cast<unsigned>(atoi(value()));
        } else if (arg == "--seed") {
            cfg.seed = static_cast<std::uint64_t>(atoll(value()));
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--characterize") {
            characterize = true;
        } else if (arg == "--trace") {
            trace_path = value();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
        }
    }

    opts.characterize = characterize;
    obs.apply(opts, ""); // single run: prefixes are used verbatim

    // Tracing has to attach before the run, so drive the pieces that
    // runWorkload() would otherwise wrap.
    auto machine = std::make_unique<Machine>(cfg);
    auto wl = apps::makeWorkload(workload, opts.scale);
    std::unique_ptr<TraceWriter> tracer;
    if (!trace_path.empty()) {
        tracer = std::make_unique<TraceWriter>(trace_path);
        machine->enableTracing(*tracer);
    }
    if (characterize)
        machine->enableCharacterizers();
    if (opts.sampleInterval > 0)
        machine->enableSampling(opts.sampleInterval);
    if (!opts.chromeTracePath.empty())
        machine->enableChromeTrace(opts.chromeStart, opts.chromeEnd);
    wl->attach(*machine);
    machine->run();
    if (!machine->allFinished()) {
        std::fprintf(stderr, "error: machine did not quiesce\n");
        return 1;
    }
    bool verified = wl->verify(*machine);
    machine->checkCoherenceInvariants();
    if (tracer)
        tracer->close();

    RunMetrics mx = machine->metrics();
    std::printf("workload         %s (scale %u)\n", workload.c_str(),
                opts.scale);
    std::printf("scheme           %s (degree %u)\n",
                toString(cfg.prefetch.scheme), cfg.prefetch.degree);
    std::printf("verified         %s\n", verified ? "yes" : "NO");
    std::printf("exec ticks       %llu\n",
                static_cast<unsigned long long>(mx.execTicks));
    std::printf("loads / stores   %.0f / %.0f\n", mx.reads, mx.writes);
    std::printf("read misses      %.0f (cold %.0f, coh %.0f, repl %.0f)\n",
                mx.readMisses, mx.missesCold, mx.missesCoherence,
                mx.missesReplacement);
    std::printf("read stall       %.0f ticks\n", mx.readStall);
    if (mx.pfIssued > 0) {
        std::printf("prefetches       %.0f issued, %.0f useful "
                    "(eff %.2f)\n",
                    mx.pfIssued, mx.pfUseful, mx.prefetchEfficiency());
    } else {
        std::printf("prefetches       none issued (eff —)\n");
    }
    std::printf("network flits    %.0f\n", mx.flits);
    if (tracer)
        std::printf("trace            %llu records -> %s\n",
                    static_cast<unsigned long long>(tracer->count()),
                    trace_path.c_str());

    if (characterize) {
        auto report = machine->characterizer(0)->finalize();
        std::printf("\nnode-0 characteristics (Table-2 methodology):\n");
        std::printf("  stride misses   %.1f%%\n",
                    100.0 * report.strideFraction);
        std::printf("  avg seq length  %.1f\n", report.avgSequenceLength);
        for (std::size_t i = 0; i < report.topStrides.size() && i < 4;
             ++i) {
            std::printf("  stride %lld blocks: %.0f%%\n",
                        static_cast<long long>(
                                report.topStrides[i].first),
                        100.0 * report.topStrides[i].second);
        }
    }
    if (dump_stats) {
        std::printf("\n");
        machine->dumpStats(std::cout);
    }
    if (!opts.statsJsonPath.empty()) {
        writeFile(opts.statsJsonPath, [&](std::ostream &os) {
            machine->dumpStatsJson(os);
        });
    }
    if (!opts.sampleCsvPath.empty()) {
        writeFile(opts.sampleCsvPath, [&](std::ostream &os) {
            machine->sampler()->dumpCsv(os);
        });
    }
    if (!opts.chromeTracePath.empty()) {
        writeFile(opts.chromeTracePath, [&](std::ostream &os) {
            machine->chromeTracer()->write(os);
        });
    }
    return verified ? 0 : 1;
}
