/**
 * @file
 * psim command-line driver: run any workload under any configuration,
 * print the paper's metrics, and optionally dump full statistics,
 * Table-2 characteristics, or a reference trace.
 *
 * Usage:
 *   psim_cli [options]
 *     --workload NAME    mp3d|cholesky|water|lu|ocean|pthor|matmul|fft
 *     --scheme NAME      none|seq|idet|ddet|adaptive|idet-la
 *     --degree N         degree of prefetching (default 1)
 *     --procs N          processors (default 16)
 *     --slc BYTES        SLC size, 0 = infinite (default 0)
 *     --block BYTES      cache block size (default 32)
 *     --scale N          data-set scale (default 1)
 *     --seed N           PRNG seed (default 12345)
 *     --stats            dump per-node statistics
 *     --characterize     print Table-2 style characteristics (node 0)
 *     --trace FILE       write the SLC reference trace to FILE
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "apps/driver.hh"
#include "trace/trace.hh"

using namespace psim;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
            "usage: %s [--workload NAME] [--scheme NAME] [--degree N]\n"
            "          [--procs N] [--slc BYTES] [--block BYTES]\n"
            "          [--scale N] [--seed N] [--stats]\n"
            "          [--characterize] [--trace FILE]\n", argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "lu";
    std::string trace_path;
    bool dump_stats = false;
    bool characterize = false;
    MachineConfig cfg;
    apps::RunOptions opts;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--workload") {
            workload = value();
        } else if (arg == "--scheme") {
            cfg.prefetch.scheme = parseScheme(value());
        } else if (arg == "--degree") {
            cfg.prefetch.degree = static_cast<unsigned>(atoi(value()));
        } else if (arg == "--procs") {
            cfg.numProcs = static_cast<unsigned>(atoi(value()));
            if (cfg.numProcs < 4)
                cfg.meshCols = cfg.numProcs;
        } else if (arg == "--slc") {
            cfg.slcSize = static_cast<unsigned>(atoi(value()));
        } else if (arg == "--block") {
            cfg.blockSize = static_cast<unsigned>(atoi(value()));
        } else if (arg == "--scale") {
            opts.scale = static_cast<unsigned>(atoi(value()));
        } else if (arg == "--seed") {
            cfg.seed = static_cast<std::uint64_t>(atoll(value()));
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--characterize") {
            characterize = true;
        } else if (arg == "--trace") {
            trace_path = value();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
        }
    }

    opts.characterize = characterize;

    // Tracing has to attach before the run, so drive the pieces that
    // runWorkload() would otherwise wrap.
    auto machine = std::make_unique<Machine>(cfg);
    auto wl = apps::makeWorkload(workload, opts.scale);
    std::unique_ptr<TraceWriter> tracer;
    if (!trace_path.empty()) {
        tracer = std::make_unique<TraceWriter>(trace_path);
        machine->enableTracing(*tracer);
    }
    if (characterize)
        machine->enableCharacterizers();
    wl->attach(*machine);
    machine->run();
    if (!machine->allFinished()) {
        std::fprintf(stderr, "error: machine did not quiesce\n");
        return 1;
    }
    bool verified = wl->verify(*machine);
    machine->checkCoherenceInvariants();
    if (tracer)
        tracer->close();

    RunMetrics mx = machine->metrics();
    std::printf("workload         %s (scale %u)\n", workload.c_str(),
                opts.scale);
    std::printf("scheme           %s (degree %u)\n",
                toString(cfg.prefetch.scheme), cfg.prefetch.degree);
    std::printf("verified         %s\n", verified ? "yes" : "NO");
    std::printf("exec ticks       %llu\n",
                static_cast<unsigned long long>(mx.execTicks));
    std::printf("loads / stores   %.0f / %.0f\n", mx.reads, mx.writes);
    std::printf("read misses      %.0f (cold %.0f, coh %.0f, repl %.0f)\n",
                mx.readMisses, mx.missesCold, mx.missesCoherence,
                mx.missesReplacement);
    std::printf("read stall       %.0f ticks\n", mx.readStall);
    if (mx.pfIssued > 0) {
        std::printf("prefetches       %.0f issued, %.0f useful "
                    "(eff %.2f)\n",
                    mx.pfIssued, mx.pfUseful, mx.prefetchEfficiency());
    } else {
        std::printf("prefetches       none issued (eff —)\n");
    }
    std::printf("network flits    %.0f\n", mx.flits);
    if (tracer)
        std::printf("trace            %llu records -> %s\n",
                    static_cast<unsigned long long>(tracer->count()),
                    trace_path.c_str());

    if (characterize) {
        auto report = machine->characterizer(0)->finalize();
        std::printf("\nnode-0 characteristics (Table-2 methodology):\n");
        std::printf("  stride misses   %.1f%%\n",
                    100.0 * report.strideFraction);
        std::printf("  avg seq length  %.1f\n", report.avgSequenceLength);
        for (std::size_t i = 0; i < report.topStrides.size() && i < 4;
             ++i) {
            std::printf("  stride %lld blocks: %.0f%%\n",
                        static_cast<long long>(
                                report.topStrides[i].first),
                        100.0 * report.topStrides[i].second);
        }
    }
    if (dump_stats) {
        std::printf("\n");
        machine->dumpStats(std::cout);
    }
    return verified ? 0 : 1;
}
