/**
 * @file
 * psim command-line driver: run any workload under any configuration,
 * print the paper's metrics, and optionally dump full statistics,
 * Table-2 characteristics, or a reference trace.
 *
 * Usage:
 *   psim_cli [options]
 *     --workload NAME    mp3d|cholesky|water|lu|ocean|pthor|matmul|fft
 *     --scheme NAME      none|seq|idet|ddet|adaptive|idet-la|
 *                        mstride|chase|ptron (see schemeNames())
 *     --degree N         degree of prefetching (default 1)
 *     --procs N          processors (default 16)
 *     --slc BYTES        SLC size, 0 = infinite (default 0)
 *     --block BYTES      cache block size (default 32)
 *     --scale N          data-set scale (default 1)
 *     --seed N           PRNG seed (default 12345)
 *     --shards N         windowed parallel engine with N shards (0=serial)
 *     --stats            dump per-node statistics
 *     --characterize     print Table-2 style characteristics (node 0)
 *     --trace FILE       write the SLC reference trace to FILE
 *
 * plus the shared observability flags (paths used verbatim here):
 *     --stats-json FILE      schema'd JSON statistics dump
 *     --sample-interval N    sample scalars every N ticks
 *     --sample-csv FILE      sampler time series as CSV
 *     --chrome-trace FILE    chrome://tracing event file
 *     --chrome-window A:B    restrict chrome-trace recording to [A, B]
 *
 * Differential fuzzing subcommand:
 *   psim_cli fuzz [options]
 *     --seeds N          check seeds seed-start..seed-start+N (default 20)
 *     --seed-start S     first seed of the range (default 1)
 *     --seed X           check one explicit seed (repeatable)
 *     --corpus FILE      read seeds from FILE (one per line, '#' comments)
 *     --jobs N           fan seeds out over N worker threads
 *     --no-shrink        skip greedy repro minimization on failure
 *     --repro-out FILE   write failing-seed repro report to FILE
 *     --tick-limit N     per-run quiesce deadline in ticks
 *     --mutant NAME      fault injection: corrupt-load|drop-store|page-cross
 *     --shards N         run every machine on the sharded engine
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "check/fuzz.hh"
#include "sim/logging.hh"
#include "sim/sampler.hh"
#include "trace/chrome_trace.hh"

#include "apps/driver.hh"
#include "trace/trace.hh"

using namespace psim;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
            "usage: %s [--workload NAME] [--scheme NAME] [--degree N]\n"
            "          [--procs N] [--slc BYTES] [--block BYTES]\n"
            "          [--scale N] [--seed N] [--shards N] [--stats]\n"
            "          [--characterize] [--trace FILE]\n"
            "          [--stats-json FILE] [--sample-interval N]\n"
            "          [--sample-csv FILE] [--chrome-trace FILE]\n"
            "          [--chrome-window A:B]\n", argv0);
    std::exit(2);
}

/** Open @p path for writing and stream @p emit into it (fatal on error). */
template <typename Emit>
void
writeFile(const std::string &path, Emit emit)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        psim_fatal("cannot write %s", path.c_str());
    emit(out);
    out.flush();
    if (!out)
        psim_fatal("write to %s failed", path.c_str());
}

[[noreturn]] void
fuzzUsage(const char *argv0)
{
    std::fprintf(stderr,
            "usage: %s fuzz [--seeds N] [--seed-start S] [--seed X]...\n"
            "          [--corpus FILE] [--jobs N] [--no-shrink]\n"
            "          [--repro-out FILE] [--tick-limit N] [--shards N]\n"
            "          [--mutant corrupt-load|drop-store|page-cross]\n",
            argv0);
    std::exit(2);
}

/** Parse a seed-corpus file: one seed per line, '#' starts a comment. */
std::vector<std::uint64_t>
readCorpus(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr,
                "error: cannot read seed corpus '%s'\n", path.c_str());
        std::exit(1);
    }
    std::vector<std::uint64_t> seeds;
    std::string line;
    while (std::getline(in, line)) {
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::size_t b = line.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            continue;
        std::size_t e = line.find_last_not_of(" \t\r");
        seeds.push_back(static_cast<std::uint64_t>(
                std::strtoull(line.substr(b, e - b + 1).c_str(),
                        nullptr, 0)));
    }
    if (seeds.empty()) {
        std::fprintf(stderr,
                "error: seed corpus '%s' contains no seeds\n",
                path.c_str());
        std::exit(1);
    }
    return seeds;
}

int
fuzzMain(int argc, char **argv)
{
    check::FuzzOptions opts;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fuzzUsage(argv[0]);
            return argv[++i];
        };
        if (arg == "--seeds") {
            opts.numSeeds = static_cast<unsigned>(atoi(value()));
        } else if (arg == "--seed-start") {
            opts.seedStart =
                    static_cast<std::uint64_t>(atoll(value()));
        } else if (arg == "--seed") {
            opts.seeds.push_back(
                    static_cast<std::uint64_t>(atoll(value())));
        } else if (arg == "--corpus") {
            opts.seeds = readCorpus(value());
        } else if (arg == "--jobs") {
            opts.jobs = static_cast<unsigned>(atoi(value()));
        } else if (arg == "--no-shrink") {
            opts.shrink = false;
        } else if (arg == "--repro-out") {
            opts.reproPath = value();
        } else if (arg == "--tick-limit") {
            opts.tickLimit = static_cast<Tick>(atoll(value()));
        } else if (arg == "--shards") {
            opts.shards = static_cast<unsigned>(atoi(value()));
        } else if (arg == "--mutant") {
            std::string m = value();
            if (m == "corrupt-load")
                opts.hooks.corruptReadPeriod = 7;
            else if (m == "drop-store")
                opts.hooks.dropStorePeriod = 11;
            else if (m == "page-cross")
                opts.hooks.allowPageCrossPeriod = 3;
            else
                fuzzUsage(argv[0]);
#ifndef PSIM_TEST_HOOKS
            std::fprintf(stderr, "error: --mutant needs a build with "
                    "-DPSIM_TEST_HOOKS=ON\n");
            return 1;
#endif
        } else if (arg == "--help" || arg == "-h") {
            fuzzUsage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            fuzzUsage(argv[0]);
        }
    }
    check::FuzzReport report = check::runFuzz(opts, std::cout);
    return report.ok() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "fuzz") == 0)
        return fuzzMain(argc, argv);
    std::string workload = "lu";
    std::string trace_path;
    bool dump_stats = false;
    bool characterize = false;
    MachineConfig cfg;
    apps::RunOptions opts;
    apps::ObservabilityOptions obs;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (obs.parseArg(argc, argv, &i)) {
            // consumed an observability flag
        } else if (arg == "--workload") {
            workload = value();
        } else if (arg == "--scheme") {
            cfg.prefetch.scheme = parseScheme(value());
        } else if (arg == "--degree") {
            cfg.prefetch.degree = static_cast<unsigned>(atoi(value()));
        } else if (arg == "--procs") {
            cfg.numProcs = static_cast<unsigned>(atoi(value()));
            if (cfg.numProcs < 4)
                cfg.meshCols = cfg.numProcs;
        } else if (arg == "--slc") {
            cfg.slcSize = static_cast<unsigned>(atoi(value()));
        } else if (arg == "--block") {
            cfg.blockSize = static_cast<unsigned>(atoi(value()));
        } else if (arg == "--scale") {
            opts.scale = static_cast<unsigned>(atoi(value()));
        } else if (arg == "--seed") {
            cfg.seed = static_cast<std::uint64_t>(atoll(value()));
        } else if (arg == "--shards") {
            cfg.shards = static_cast<unsigned>(atoi(value()));
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--characterize") {
            characterize = true;
        } else if (arg == "--trace") {
            trace_path = value();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
        }
    }

    opts.characterize = characterize;
    obs.apply(opts, ""); // single run: prefixes are used verbatim

    // Tracing has to attach before the run, so drive the pieces that
    // runWorkload() would otherwise wrap.
    auto machine = std::make_unique<Machine>(cfg);
    auto wl = apps::makeWorkload(workload, opts.scale);
    std::unique_ptr<TraceWriter> tracer;
    if (!trace_path.empty()) {
        tracer = std::make_unique<TraceWriter>(trace_path);
        machine->enableTracing(*tracer);
    }
    if (characterize)
        machine->enableCharacterizers();
    if (opts.sampleInterval > 0)
        machine->enableSampling(opts.sampleInterval);
    if (!opts.chromeTracePath.empty())
        machine->enableChromeTrace(opts.chromeStart, opts.chromeEnd);
    wl->attach(*machine);
    machine->run();
    if (!machine->allFinished()) {
        std::fprintf(stderr, "error: machine did not quiesce\n");
        return 1;
    }
    bool verified = wl->verify(*machine);
    machine->checkCoherenceInvariants();
    if (tracer)
        tracer->close();

    RunMetrics mx = machine->metrics();
    std::printf("workload         %s (scale %u)\n", workload.c_str(),
                opts.scale);
    std::printf("scheme           %s (degree %u)\n",
                toString(cfg.prefetch.scheme), cfg.prefetch.degree);
    std::printf("verified         %s\n", verified ? "yes" : "NO");
    std::printf("exec ticks       %llu\n",
                static_cast<unsigned long long>(mx.execTicks));
    std::printf("loads / stores   %.0f / %.0f\n", mx.reads, mx.writes);
    std::printf("read misses      %.0f (cold %.0f, coh %.0f, repl %.0f)\n",
                mx.readMisses, mx.missesCold, mx.missesCoherence,
                mx.missesReplacement);
    std::printf("read stall       %.0f ticks\n", mx.readStall);
    if (mx.pfIssued > 0) {
        std::printf("prefetches       %.0f issued, %.0f useful "
                    "(eff %.2f)\n",
                    mx.pfIssued, mx.pfUseful, mx.prefetchEfficiency());
    } else {
        std::printf("prefetches       none issued (eff —)\n");
    }
    std::printf("network flits    %.0f\n", mx.flits);
    if (tracer)
        std::printf("trace            %llu records -> %s\n",
                    static_cast<unsigned long long>(tracer->count()),
                    trace_path.c_str());

    if (characterize) {
        auto report = machine->characterizer(0)->finalize();
        std::printf("\nnode-0 characteristics (Table-2 methodology):\n");
        std::printf("  stride misses   %.1f%%\n",
                    100.0 * report.strideFraction);
        std::printf("  avg seq length  %.1f\n", report.avgSequenceLength);
        for (std::size_t i = 0; i < report.topStrides.size() && i < 4;
             ++i) {
            std::printf("  stride %lld blocks: %.0f%%\n",
                        static_cast<long long>(
                                report.topStrides[i].first),
                        100.0 * report.topStrides[i].second);
        }
    }
    if (dump_stats) {
        std::printf("\n");
        machine->dumpStats(std::cout);
    }
    if (!opts.statsJsonPath.empty()) {
        writeFile(opts.statsJsonPath, [&](std::ostream &os) {
            machine->dumpStatsJson(os);
        });
    }
    if (!opts.sampleCsvPath.empty()) {
        writeFile(opts.sampleCsvPath, [&](std::ostream &os) {
            machine->sampler()->dumpCsv(os);
        });
    }
    if (!opts.chromeTracePath.empty()) {
        writeFile(opts.chromeTracePath, [&](std::ostream &os) {
            machine->chromeTracer()->write(os);
        });
    }
    return verified ? 0 : 1;
}
