/**
 * @file
 * Offline trace analysis: apply the paper's Section-5.1 methodology to
 * a captured reference trace (see psim_cli --trace).
 *
 * Usage:
 *   trace_tool FILE [--node N] [--salvage]
 *   trace_tool stats FILE [--salvage]
 *   trace_tool check FILE [--salvage]
 *
 * The default mode prints trace summary statistics, the Table-2 stride
 * characterization of the selected node's read-miss stream, and the
 * candidate-coverage of each prefetching scheme replayed over that
 * stream. The `stats` subcommand aggregates the trace into the same
 * schema'd JSON document the simulator emits (--stats-json), so the
 * downstream tooling can consume either source. The `check` subcommand
 * validates a trace without analyzing it -- well-formed records and
 * per-node tick monotonicity -- and exits nonzero on an empty or
 * malformed file, for use as a pipeline gate.
 *
 * `--salvage` recovers records from a capture whose writer died before
 * close() (the header still says 0 records); without it such files are
 * rejected loudly.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "core/characterizer.hh"
#include "core/ddet.hh"
#include "core/idet.hh"
#include "core/sequential.hh"
#include "sim/stats.hh"
#include "trace/trace.hh"

using namespace psim;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
            "usage: %s FILE [--node N] [--salvage]\n"
            "       %s stats FILE [--salvage]\n"
            "       %s check FILE [--salvage]\n", argv0, argv0, argv0);
    std::exit(2);
}

/**
 * `trace_tool check`: validate a trace for pipeline use. Exits 0 with
 * a one-line summary when the file holds at least one record and every
 * node's ticks are monotone, 1 with a one-line diagnostic otherwise.
 */
int
checkCommand(const std::string &path, bool salvage)
{
    auto records = TraceReader::readAll(path, salvage);
    if (records.empty()) {
        std::fprintf(stderr,
                "error: trace '%s' holds no records\n", path.c_str());
        return 1;
    }
    std::map<NodeId, Tick> last_tick;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto &rec = records[i];
        auto [it, fresh] = last_tick.try_emplace(rec.node, rec.tick);
        if (!fresh && rec.tick < it->second) {
            std::fprintf(stderr,
                    "error: trace '%s' record %zu: node %u tick %llu "
                    "goes backwards (previous %llu)\n",
                    path.c_str(), i, rec.node,
                    (unsigned long long)rec.tick,
                    (unsigned long long)it->second);
            return 1;
        }
        it->second = rec.tick;
    }
    std::printf("%s: OK, %zu records, %zu nodes\n", path.c_str(),
                records.size(), last_tick.size());
    return 0;
}

/**
 * `trace_tool stats`: aggregate a trace into the simulator's JSON stats
 * schema. The "trace" group carries whole-file counts; each node that
 * appears in the trace gets a "nodeN.trace" group.
 */
int
statsCommand(const std::string &path, bool salvage)
{
    auto records = TraceReader::readAll(path, salvage);

    struct NodeCounts
    {
        stats::Scalar reads, readMisses, writes;
    };
    // std::map: nodes render in ascending id order, and inserting new
    // nodes never invalidates the pointers already registered.
    std::map<NodeId, NodeCounts> nodes;
    stats::Scalar total, reads, readMisses, writes;
    Tick first = 0, last = 0;
    for (const auto &rec : records) {
        if (total.value() == 0 || rec.tick < first)
            first = rec.tick;
        if (rec.tick > last)
            last = rec.tick;
        ++total;
        NodeCounts &nc = nodes[rec.node];
        if (rec.kind == TraceRecord::Kind::Read) {
            ++reads;
            ++nc.reads;
            if (!rec.hit) {
                ++readMisses;
                ++nc.readMisses;
            }
        } else {
            ++writes;
            ++nc.writes;
        }
    }

    stats::Scalar first_tick, last_tick, node_count;
    first_tick = static_cast<double>(first);
    last_tick = static_cast<double>(last);
    node_count = static_cast<double>(nodes.size());

    stats::Registry registry;
    stats::Group &g = registry.addGroup("trace");
    g.addScalar("records", &total, "records in the trace");
    g.addScalar("reads", &reads, "SLC read probes");
    g.addScalar("readMisses", &readMisses, "SLC read misses");
    g.addScalar("writes", &writes, "SLC write probes");
    g.addScalar("nodes", &node_count, "distinct nodes in the trace");
    g.addScalar("firstTick", &first_tick, "tick of the first record");
    g.addScalar("lastTick", &last_tick, "tick of the last record");
    for (auto &[id, nc] : nodes) {
        stats::Group &ng = registry.addGroup(
                "node" + std::to_string(id) + ".trace");
        ng.addScalar("reads", &nc.reads, "SLC read probes");
        ng.addScalar("readMisses", &nc.readMisses, "SLC read misses");
        ng.addScalar("writes", &nc.writes, "SLC write probes");
    }
    registry.dumpJson(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0]);

    bool stats_mode = std::strcmp(argv[1], "stats") == 0;
    bool check_mode = std::strcmp(argv[1], "check") == 0;
    int first_arg = (stats_mode || check_mode) ? 2 : 1;
    if (first_arg >= argc)
        usage(argv[0]);
    std::string path = argv[first_arg];
    NodeId node = 0;
    bool salvage = false;
    for (int i = first_arg + 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--node") == 0 && i + 1 < argc)
            node = static_cast<NodeId>(atoi(argv[++i]));
        else if (std::strcmp(argv[i], "--salvage") == 0)
            salvage = true;
        else
            usage(argv[0]);
    }

    if (stats_mode)
        return statsCommand(path, salvage);
    if (check_mode)
        return checkCommand(path, salvage);

    auto records = TraceReader::readAll(path, salvage);
    std::printf("%s: %zu records\n", path.c_str(), records.size());

    std::map<NodeId, std::uint64_t> per_node;
    std::uint64_t reads = 0, writes = 0, read_misses = 0;
    for (const auto &rec : records) {
        ++per_node[rec.node];
        if (rec.kind == TraceRecord::Kind::Read) {
            ++reads;
            if (!rec.hit)
                ++read_misses;
        } else {
            ++writes;
        }
    }
    std::printf("reads %llu (misses %llu), writes %llu, %zu nodes\n",
                static_cast<unsigned long long>(reads),
                static_cast<unsigned long long>(read_misses),
                static_cast<unsigned long long>(writes),
                per_node.size());

    // Characterize the chosen node's demand read-miss stream.
    StrideCharacterizer chr(32);
    std::uint64_t node_misses = 0;
    for (const auto &rec : records) {
        if (rec.node == node && rec.kind == TraceRecord::Kind::Read &&
            !rec.hit) {
            chr.observeMiss(rec.pc, rec.addr);
            ++node_misses;
        }
    }
    auto report = chr.finalize();
    std::printf("\nnode %u: %llu read misses\n", node,
                static_cast<unsigned long long>(node_misses));
    std::printf("  stride misses   %.1f%%\n",
                100.0 * report.strideFraction);
    std::printf("  avg seq length  %.1f\n", report.avgSequenceLength);
    for (std::size_t i = 0; i < report.topStrides.size() && i < 4; ++i) {
        std::printf("  stride %lld blocks: %.0f%% of stride misses\n",
                    static_cast<long long>(report.topStrides[i].first),
                    100.0 * report.topStrides[i].second);
    }

    // Replay each scheme over the node's SLC-read stream and measure
    // how often its candidates cover a later miss.
    auto evaluate = [&](Prefetcher &p) {
        std::vector<Addr> out;
        std::uint64_t issued = 0, covering = 0;
        std::vector<Addr> future;
        for (const auto &rec : records) {
            if (rec.node == node && rec.kind == TraceRecord::Kind::Read)
                future.push_back(alignDown(rec.addr, 32));
        }
        std::size_t pos = 0;
        for (const auto &rec : records) {
            if (rec.node != node || rec.kind != TraceRecord::Kind::Read)
                continue;
            out.clear();
            ReadObservation obs;
            obs.pc = rec.pc;
            obs.addr = rec.addr;
            obs.hit = rec.hit;
            p.observeRead(obs, out);
            for (Addr cand : out) {
                ++issued;
                Addr blk = alignDown(cand, 32);
                for (std::size_t j = pos + 1;
                     j < future.size() && j < pos + 512; ++j) {
                    if (future[j] == blk) {
                        ++covering;
                        break;
                    }
                }
            }
            ++pos;
        }
        std::printf("  %-12s issued %8llu, covering %8llu (%.0f%%)\n",
                    p.name(), static_cast<unsigned long long>(issued),
                    static_cast<unsigned long long>(covering),
                    issued ? 100.0 * covering / issued : 0.0);
    };

    std::printf("\nprefetcher replay over node %u's reads:\n", node);
    SequentialPrefetcher seq(32, 1);
    evaluate(seq);
    IDetPrefetcher idet(256, 1, 32);
    evaluate(idet);
    DDetPrefetcher ddet(32, 1, 16, 3, 4096);
    evaluate(ddet);
    return 0;
}
