/**
 * @file
 * Offline trace analysis: apply the paper's Section-5.1 methodology to
 * a captured reference trace (see psim_cli --trace).
 *
 * Usage:
 *   trace_tool FILE [--node N]
 *
 * Prints trace summary statistics, the Table-2 stride characterization
 * of the selected node's read-miss stream, and the candidate-coverage
 * of each prefetching scheme replayed over that stream.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/characterizer.hh"
#include "core/ddet.hh"
#include "core/idet.hh"
#include "core/sequential.hh"
#include "trace/trace.hh"

using namespace psim;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s FILE [--node N]\n", argv[0]);
        return 2;
    }
    std::string path = argv[1];
    NodeId node = 0;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--node") == 0 && i + 1 < argc)
            node = static_cast<NodeId>(atoi(argv[++i]));
    }

    auto records = TraceReader::readAll(path);
    std::printf("%s: %zu records\n", path.c_str(), records.size());

    std::map<NodeId, std::uint64_t> per_node;
    std::uint64_t reads = 0, writes = 0, read_misses = 0;
    for (const auto &rec : records) {
        ++per_node[rec.node];
        if (rec.kind == TraceRecord::Kind::Read) {
            ++reads;
            if (!rec.hit)
                ++read_misses;
        } else {
            ++writes;
        }
    }
    std::printf("reads %llu (misses %llu), writes %llu, %zu nodes\n",
                static_cast<unsigned long long>(reads),
                static_cast<unsigned long long>(read_misses),
                static_cast<unsigned long long>(writes),
                per_node.size());

    // Characterize the chosen node's demand read-miss stream.
    StrideCharacterizer chr(32);
    std::uint64_t node_misses = 0;
    for (const auto &rec : records) {
        if (rec.node == node && rec.kind == TraceRecord::Kind::Read &&
            !rec.hit) {
            chr.observeMiss(rec.pc, rec.addr);
            ++node_misses;
        }
    }
    auto report = chr.finalize();
    std::printf("\nnode %u: %llu read misses\n", node,
                static_cast<unsigned long long>(node_misses));
    std::printf("  stride misses   %.1f%%\n",
                100.0 * report.strideFraction);
    std::printf("  avg seq length  %.1f\n", report.avgSequenceLength);
    for (std::size_t i = 0; i < report.topStrides.size() && i < 4; ++i) {
        std::printf("  stride %lld blocks: %.0f%% of stride misses\n",
                    static_cast<long long>(report.topStrides[i].first),
                    100.0 * report.topStrides[i].second);
    }

    // Replay each scheme over the node's SLC-read stream and measure
    // how often its candidates cover a later miss.
    auto evaluate = [&](Prefetcher &p) {
        std::vector<Addr> out;
        std::uint64_t issued = 0, covering = 0;
        std::vector<Addr> future;
        for (const auto &rec : records) {
            if (rec.node == node && rec.kind == TraceRecord::Kind::Read)
                future.push_back(alignDown(rec.addr, 32));
        }
        std::size_t pos = 0;
        for (const auto &rec : records) {
            if (rec.node != node || rec.kind != TraceRecord::Kind::Read)
                continue;
            out.clear();
            ReadObservation obs;
            obs.pc = rec.pc;
            obs.addr = rec.addr;
            obs.hit = rec.hit;
            p.observeRead(obs, out);
            for (Addr cand : out) {
                ++issued;
                Addr blk = alignDown(cand, 32);
                for (std::size_t j = pos + 1;
                     j < future.size() && j < pos + 512; ++j) {
                    if (future[j] == blk) {
                        ++covering;
                        break;
                    }
                }
            }
            ++pos;
        }
        std::printf("  %-12s issued %8llu, covering %8llu (%.0f%%)\n",
                    p.name(), static_cast<unsigned long long>(issued),
                    static_cast<unsigned long long>(covering),
                    issued ? 100.0 * covering / issued : 0.0);
    };

    std::printf("\nprefetcher replay over node %u's reads:\n", node);
    SequentialPrefetcher seq(32, 1);
    evaluate(seq);
    IDetPrefetcher idet(256, 1, 32);
    evaluate(idet);
    DDetPrefetcher ddet(32, 1, 16, 3, 4096);
    evaluate(ddet);
    return 0;
}
